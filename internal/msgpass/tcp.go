package msgpass

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
)

// This file puts the Section 4 transformation on real sockets: the same
// node logic and K-state protocol, with frames traveling over one TCP
// connection per edge on localhost instead of in-process channels. The
// protocol needs nothing from the transport beyond best effort — frames
// are full-state gossip retransmitted every tick, so connection drops,
// write failures, and in-flight losses only delay convergence. That is
// what makes wiring a stabilizing protocol to a real network this short.
//
// Edges self-heal: whenever an edge's socket dies (peer restart, sever,
// or any I/O error), the low endpoint's side redials with capped backoff
// until the connection is back, and the acceptor keeps accepting for the
// transport's whole lifetime. Node restarts sever the node's sockets
// first (a revived process has fresh connections in any real
// deployment), so Network.Restart exercises the full reconnect path.

// wireFrame is the gob-encoded form of a message.
type wireFrame struct {
	EdgeIdx  int
	From     int32
	Counter  uint8
	State    uint8
	Depth    int32
	Priority int32
}

func toWire(m message) wireFrame {
	return wireFrame{
		EdgeIdx:  m.edgeIdx,
		From:     int32(m.from),
		Counter:  m.counter,
		State:    uint8(m.state),
		Depth:    int32(m.depth),
		Priority: int32(m.priority),
	}
}

func fromWire(w wireFrame) message {
	return message{
		edgeIdx:  w.EdgeIdx,
		from:     graph.ProcID(w.From),
		counter:  w.Counter,
		state:    core.State(w.State),
		depth:    int(w.Depth),
		priority: graph.ProcID(w.Priority),
	}
}

// redial backoff bounds: first retry after redialBase, doubling to
// redialMax while the peer's listener is unreachable.
const (
	redialBase = 2 * time.Millisecond
	redialMax  = 100 * time.Millisecond
)

// tcpTransport owns the listeners and per-edge connections.
type tcpTransport struct {
	nw        *Network
	addrs     []string // per-node listener addresses (immutable after setup)
	listeners []net.Listener

	mu        sync.Mutex
	conns     map[int]map[graph.ProcID]*tcpConn // edge index -> sender -> conn; guarded by mu
	redialing map[int]bool                      // edges with an in-flight redial loop; guarded by mu
	done      bool                              // guarded by mu
}

// tcpConn is one direction of an edge's socket with its encoder.
type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder // guarded by mu
	mu  sync.Mutex
}

// NewTCPNetwork builds a Network whose frames travel over real TCP
// connections on localhost — one listener per node, one connection per
// edge, gob-framed. The returned network behaves exactly like the
// in-process one (Start/Stop/Kill/Restart/CrashMaliciously/Eats/...);
// Stop also tears the sockets down. Loss injection, fault injection,
// and partitions apply before the transport, so they compose.
func NewTCPNetwork(cfg Config) (*Network, error) {
	nw := NewNetwork(cfg)
	nw.external = true // sockets pin the edge set: no runtime membership
	tr := &tcpTransport{
		nw:        nw,
		conns:     make(map[int]map[graph.ProcID]*tcpConn),
		redialing: make(map[int]bool),
	}
	g := cfg.Graph

	// One listener per node.
	tr.addrs = make([]string, g.N())
	for p := 0; p < g.N(); p++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("msgpass: listen for node %d: %w", p, err)
		}
		tr.listeners = append(tr.listeners, ln)
		tr.addrs[p] = ln.Addr().String()
		nw.wg.Add(1)
		go tr.acceptLoop(ln)
	}

	// The low endpoint of each edge dials the high endpoint's listener
	// and announces the edge index; both directions share the socket.
	for i, e := range g.Edges() {
		c, err := net.Dial("tcp", tr.addrs[e.B])
		if err != nil {
			tr.close()
			return nil, fmt.Errorf("msgpass: dial edge %v: %w", e, err)
		}
		enc := gob.NewEncoder(c)
		if err := enc.Encode(handshakeFrame{EdgeIdx: i}); err != nil {
			tr.close()
			return nil, fmt.Errorf("msgpass: handshake edge %v: %w", e, err)
		}
		tr.register(i, e.A, &tcpConn{c: c, enc: enc})
		// The low endpoint reads the high endpoint's frames from the
		// same socket; when the socket dies it owns redialing the edge.
		nw.wg.Add(1)
		go tr.readLoop(i, e.A, c)
	}

	nw.sendFrame = tr.send
	nw.onStop = tr.close
	nw.onRestart = tr.sever
	return nw, nil
}

// handshakeFrame announces which edge a freshly dialed connection serves.
type handshakeFrame struct {
	EdgeIdx int
}

// register records the connection a sender uses for an edge, closing any
// stale predecessor.
func (tr *tcpTransport) register(edgeIdx int, sender graph.ProcID, c *tcpConn) {
	tr.mu.Lock()
	if tr.conns[edgeIdx] == nil {
		tr.conns[edgeIdx] = make(map[graph.ProcID]*tcpConn)
	}
	old := tr.conns[edgeIdx][sender]
	tr.conns[edgeIdx][sender] = c
	tr.mu.Unlock()
	if old != nil {
		_ = old.c.Close()
	}
}

// deregister drops the sender's conn for an edge iff it is still the
// registered one (a redial may already have replaced it).
func (tr *tcpTransport) deregister(edgeIdx int, sender graph.ProcID, c *tcpConn) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if byEdge := tr.conns[edgeIdx]; byEdge != nil && byEdge[sender] == c {
		delete(byEdge, sender)
	}
}

// acceptLoop accepts connections on one node's listener for the
// transport's whole lifetime, so severed edges can reconnect.
func (tr *tcpTransport) acceptLoop(ln net.Listener) {
	defer tr.nw.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed during Stop
		}
		dec := gob.NewDecoder(c)
		var hs handshakeFrame
		if err := dec.Decode(&hs); err != nil {
			_ = c.Close()
			continue
		}
		if hs.EdgeIdx < 0 || hs.EdgeIdx >= tr.nw.cfg.Graph.EdgeCount() {
			_ = c.Close()
			continue
		}
		e := tr.nw.cfg.Graph.Edges()[hs.EdgeIdx]
		// The accepting side (the high endpoint) writes its frames for
		// this edge over the same socket and keeps reading the dialer's.
		conn := &tcpConn{c: c, enc: gob.NewEncoder(c)}
		tr.register(hs.EdgeIdx, e.B, conn)
		tr.nw.wg.Add(1)
		go tr.pumpAccepted(hs.EdgeIdx, conn, dec)
	}
}

// readLoop decodes frames arriving for the dialer-side receiver; when
// the socket dies, it schedules the edge's redial.
func (tr *tcpTransport) readLoop(edgeIdx int, receiver graph.ProcID, c net.Conn) {
	defer tr.nw.wg.Done()
	tr.pump(receiver, gob.NewDecoder(c))
	e := tr.nw.cfg.Graph.Edges()[edgeIdx]
	tr.mu.Lock()
	if byEdge := tr.conns[edgeIdx]; byEdge != nil {
		if conn := byEdge[e.A]; conn != nil && conn.c == c {
			delete(byEdge, e.A)
		}
	}
	tr.mu.Unlock()
	tr.scheduleRedial(edgeIdx)
}

// pumpAccepted decodes frames on an accepted socket; the dialer side
// owns reconnection, so on death it only deregisters its conn.
func (tr *tcpTransport) pumpAccepted(edgeIdx int, conn *tcpConn, dec *gob.Decoder) {
	defer tr.nw.wg.Done()
	e := tr.nw.cfg.Graph.Edges()[edgeIdx]
	tr.pump(e.B, dec)
	tr.deregister(edgeIdx, e.B, conn)
}

func (tr *tcpTransport) pump(receiver graph.ProcID, dec *gob.Decoder) {
	for {
		var wf wireFrame
		if err := dec.Decode(&wf); err != nil {
			return // connection closed or corrupted: gossip re-heals
		}
		m := fromWire(wf)
		if m.edgeIdx < 0 || m.edgeIdx >= tr.nw.cfg.Graph.EdgeCount() {
			continue // garbage frame
		}
		tr.nw.inject(receiver, m)
	}
}

// scheduleRedial starts one redial loop for the edge unless the
// transport is closing or a redial is already in flight.
func (tr *tcpTransport) scheduleRedial(edgeIdx int) {
	tr.mu.Lock()
	if tr.done || tr.redialing[edgeIdx] {
		tr.mu.Unlock()
		return
	}
	tr.redialing[edgeIdx] = true
	tr.nw.wg.Add(1)
	tr.mu.Unlock()
	go tr.redial(edgeIdx)
}

// redial re-establishes one edge's socket with capped exponential
// backoff, then restarts the dialer-side read loop. It gives up only
// when the transport shuts down.
func (tr *tcpTransport) redial(edgeIdx int) {
	defer tr.nw.wg.Done()
	e := tr.nw.cfg.Graph.Edges()[edgeIdx]
	backoff := redialBase
	for {
		tr.mu.Lock()
		closed := tr.done
		tr.mu.Unlock()
		if closed {
			tr.clearRedialing(edgeIdx)
			return
		}
		c, err := net.DialTimeout("tcp", tr.addrs[e.B], 250*time.Millisecond)
		if err == nil {
			enc := gob.NewEncoder(c)
			if err := enc.Encode(handshakeFrame{EdgeIdx: edgeIdx}); err == nil {
				tr.mu.Lock()
				if tr.done {
					tr.mu.Unlock()
					_ = c.Close()
					tr.clearRedialing(edgeIdx)
					return
				}
				tr.redialing[edgeIdx] = false
				tr.nw.wg.Add(1)
				tr.mu.Unlock()
				tr.register(edgeIdx, e.A, &tcpConn{c: c, enc: enc})
				tr.nw.reconnects.Add(1)
				go tr.readLoop(edgeIdx, e.A, c)
				return
			}
			_ = c.Close()
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > redialMax {
			backoff = redialMax
		}
	}
}

// clearRedialing drops the in-flight marker for an edge.
func (tr *tcpTransport) clearRedialing(edgeIdx int) {
	tr.mu.Lock()
	tr.redialing[edgeIdx] = false
	tr.mu.Unlock()
}

// sever closes every socket incident to node p — the transport-level
// face of a node restart. The surviving read loops notice and redial,
// so the edges come back with fresh connections.
func (tr *tcpTransport) sever(p graph.ProcID) {
	g := tr.nw.cfg.Graph
	var victims []*tcpConn
	tr.mu.Lock()
	for _, i := range g.IncidentEdgeIndices(p) {
		byEdge := tr.conns[i]
		if byEdge == nil {
			continue
		}
		e := g.Edges()[i]
		for _, sender := range [2]graph.ProcID{e.A, e.B} {
			if c := byEdge[sender]; c != nil {
				victims = append(victims, c)
				delete(byEdge, sender)
			}
		}
	}
	tr.mu.Unlock()
	for _, c := range victims {
		_ = c.c.Close()
	}
}

// send writes the frame on the sender's socket for that edge.
func (tr *tcpTransport) send(to graph.ProcID, m message, _ int) bool {
	tr.mu.Lock()
	byEdge := tr.conns[m.edgeIdx]
	var conn *tcpConn
	if byEdge != nil {
		conn = byEdge[m.from]
	}
	closed := tr.done
	tr.mu.Unlock()
	if conn == nil || closed {
		return false
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	return conn.enc.Encode(toWire(m)) == nil
}

// close tears down listeners and connections.
func (tr *tcpTransport) close() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	tr.done = true
	for _, ln := range tr.listeners {
		_ = ln.Close()
	}
	for _, byEdge := range tr.conns {
		for _, c := range byEdge {
			_ = c.c.Close()
		}
	}
}
