// Driven mode: the same runtime, stepped by an external single-threaded
// driver instead of goroutines and wall-clock tickers.
//
// The goroutine loop (runGuarded) is only a scheduler: it interleaves
// three primitives — the initial gossip, "one tick event" (pollControl +
// onEvent + gossipAll), and "one frame delivery" (pollControl + handle).
// Driven exposes exactly those primitives, captures every frame the node
// logic emits instead of pushing it into channels, and reads time from a
// pluggable clock. A deterministic scheduler (internal/detsim) that owns
// the interleaving, the in-flight frame pool, and a virtual clock can
// therefore replay any schedule byte-for-byte while running the very same
// protocol code the production goroutine runtime executes.
//
//lint:deterministic
package msgpass

import (
	"fmt"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
)

// Frame is one in-flight protocol frame held by an external driver
// between send and delivery. The payload is opaque; String exposes it so
// schedule traces pin frame contents, not just envelopes.
type Frame struct {
	// To and From are the receiving and sending endpoints.
	To, From graph.ProcID

	// Delay is the fault injector's remaining hold, in driver rounds: a
	// deterministic driver must keep the frame pending for this many
	// rounds before delivering it (zero for normal frames).
	Delay int

	m message
}

// String renders the full frame payload for event traces.
func (f Frame) String() string {
	if f.Delay > 0 {
		return fmt.Sprintf("e%d %d->%d k%d s%d dp%d pr%d hold%d",
			f.m.edgeIdx, f.From, f.To, f.m.counter, f.m.state, f.m.depth, f.m.priority, f.Delay)
	}
	return fmt.Sprintf("e%d %d->%d k%d s%d dp%d pr%d",
		f.m.edgeIdx, f.From, f.To, f.m.counter, f.m.state, f.m.depth, f.m.priority)
}

// EdgeIndex returns the graph edge index the frame travels on.
func (f Frame) EdgeIndex() int { return f.m.edgeIdx }

// Driven is a Network in single-threaded, externally driven mode: no
// goroutines run; the caller steps nodes and delivers frames explicitly.
// All Network control surfaces (Kill, CrashMaliciously, SetNeeds,
// SetPartitioned, InitArbitrary) and accessors (Eats, Sessions,
// Snapshot, ...) work as usual; Start must not be called.
type Driven struct {
	nw  *Network
	out []Frame
}

// NewDriven builds a driven network. clock supplies the network's notion
// of time (virtual time for deterministic runs); nil keeps time.Now.
func NewDriven(cfg Config, clock func() time.Time) *Driven {
	nw := NewNetwork(cfg)
	nw.driven = true
	if clock != nil {
		nw.now = clock
	}
	d := &Driven{nw: nw}
	nw.sendFrame = func(to graph.ProcID, m message, delayTicks int) bool {
		d.out = append(d.out, Frame{To: to, From: m.from, Delay: delayTicks, m: m})
		return true
	}
	return d
}

// Network returns the underlying network for control and inspection.
func (d *Driven) Network() *Network { return d.nw }

// take drains the frames captured since the last step.
func (d *Driven) take() []Frame {
	out := d.out
	d.out = nil
	return out
}

// Boot performs each node's initial gossip (the goroutine loop's first
// act) and returns the emitted frames. Call once, before any stepping.
func (d *Driven) Boot() []Frame {
	for _, nd := range d.nw.procs.Load().nodes {
		nd.gossipAll()
	}
	return d.take()
}

// Tick delivers one scheduler tick to node p — exactly the ticker arm of
// the goroutine loop — and returns the frames it emitted.
func (d *Driven) Tick(p graph.ProcID) []Frame {
	nd := d.nw.procs.Load().nodes[p]
	nd.pollControl()
	nd.onEvent()
	nd.gossipAll()
	return d.take()
}

// Deliver hands frame f to its destination — exactly the inbox arm of
// the goroutine loop — and returns the frames emitted in response.
func (d *Driven) Deliver(f Frame) []Frame {
	nd := d.nw.procs.Load().nodes[f.To]
	nd.pollControl()
	nd.handle(f.m)
	return d.take()
}

// Finish closes any open eating session at the current (virtual)
// instant, the driven-mode counterpart of Stop's session flush.
func (d *Driven) Finish() { d.nw.finishSessions() }

// Reader returns a read-only view of the driven network's instantaneous
// node variables in the sim.StateReader shape, so the specification
// predicates of internal/spec apply to simulated traces unchanged.
func (d *Driven) Reader() *DrivenReader { return &DrivenReader{nw: d.nw} }

// DrivenReader adapts a driven network to the StateReader methods. Only
// valid between driver steps of a single-threaded run.
type DrivenReader struct {
	nw *Network
}

// Graph returns the current topology generation (membership splices
// install a fresh immutable graph; see Network.Graph).
func (r *DrivenReader) Graph() *graph.Graph { return r.nw.Graph() }

// DiameterConst returns the constant D the nodes use.
func (r *DrivenReader) DiameterConst() int { return r.nw.d }

// State returns node p's current dining state variable.
func (r *DrivenReader) State(p graph.ProcID) core.State { return r.nw.procs.Load().nodes[p].state }

// Depth returns node p's current depth variable.
func (r *DrivenReader) Depth(p graph.ProcID) int { return r.nw.procs.Load().nodes[p].depth }

// Dead reports whether node p has halted. A node inside its malicious
// window is not yet dead (see Malicious).
func (r *DrivenReader) Dead(p graph.ProcID) bool { return r.nw.procs.Load().nodes[p].dead }

// Malicious reports whether node p is inside a malicious-crash window:
// still taking steps, but with garbage state. Safety oracles exempt such
// nodes the same way they exempt the dead — a corrupted Eating variable
// is not an eating session.
func (r *DrivenReader) Malicious(p graph.ProcID) bool { return r.nw.procs.Load().nodes[p].malSteps > 0 }

// Halting reports whether node p has a kill or revival command it has
// not yet polled. Control flags apply lazily at the node's next step, so
// between the command and that step its variables are a corpse — frozen
// by a departure, or about to be rebooted — not a live protocol state;
// safety oracles exempt the window exactly as they exempt the dead.
func (r *DrivenReader) Halting(p graph.ProcID) bool {
	ros := r.nw.procs.Load()
	return ros.kill[p].Load() || ros.restart[p].Load() != 0
}

// Priority returns the believed holder of the shared priority variable
// on edge e: the belief of the endpoint currently holding the edge
// token (the write capability), falling back to the low endpoint's
// belief while the token is in flight.
func (r *DrivenReader) Priority(e graph.Edge) graph.ProcID {
	i := r.nw.edgeIDOf(e.A, e.B)
	if i < 0 {
		panic(fmt.Sprintf("msgpass: no edge %v", e))
	}
	ros := r.nw.procs.Load()
	ea := ros.nodes[e.A].edgeByIdx(i)
	eb := ros.nodes[e.B].edgeByIdx(i)
	switch {
	case ea.holds():
		return ea.priority
	case eb.holds():
		return eb.priority
	default:
		return ea.priority
	}
}

// ForkFrame is one in-flight Chandy-Misra frame held by an external
// driver between send and delivery.
type ForkFrame struct {
	// To and From are the receiving and sending endpoints.
	To, From graph.ProcID

	m forkMsg
}

// String renders the frame payload for event traces.
func (f ForkFrame) String() string {
	return fmt.Sprintf("e%d %d->%d kind%d", f.m.edgeIdx, f.From, f.To, f.m.kind)
}

// ForkDriven is a ForkNetwork in single-threaded, externally driven
// mode — the deterministic counterpart of the goroutine baseline, used
// to pin the classic protocol's crash behavior exactly.
type ForkDriven struct {
	nw  *ForkNetwork
	out []ForkFrame
}

// NewForkDriven builds a driven Chandy-Misra network with the given
// clock (nil keeps time.Now).
func NewForkDriven(cfg ForkConfig, clock func() time.Time) *ForkDriven {
	nw := NewForkNetwork(cfg)
	nw.driven = true
	if clock != nil {
		nw.now = clock
	}
	d := &ForkDriven{nw: nw}
	nw.sendFrame = func(to graph.ProcID, m forkMsg) bool {
		d.out = append(d.out, ForkFrame{To: to, From: m.from, m: m})
		return true
	}
	return d
}

// Network returns the underlying network for control and inspection.
func (d *ForkDriven) Network() *ForkNetwork { return d.nw }

func (d *ForkDriven) take() []ForkFrame {
	out := d.out
	d.out = nil
	return out
}

// Tick delivers one self-check tick to philosopher p (the ticker arm of
// the goroutine loop) and returns the frames it emitted.
func (d *ForkDriven) Tick(p graph.ProcID) []ForkFrame {
	nd := d.nw.nodes[p]
	nd.poll()
	nd.act()
	return d.take()
}

// Deliver hands frame f to its destination (the inbox arm of the
// goroutine loop) and returns the frames emitted in response.
func (d *ForkDriven) Deliver(f ForkFrame) []ForkFrame {
	nd := d.nw.nodes[f.To]
	nd.poll()
	nd.handle(f.m)
	nd.act()
	return d.take()
}

// Finish closes any open eating session at the current (virtual)
// instant.
func (d *ForkDriven) Finish() { d.nw.finishSessions() }

// Eating reports whether philosopher p is currently eating.
func (d *ForkDriven) Eating(p graph.ProcID) bool { return d.nw.nodes[p].state == 1 }

// Dead reports whether philosopher p has halted.
func (d *ForkDriven) Dead(p graph.ProcID) bool { return d.nw.nodes[p].dead }
