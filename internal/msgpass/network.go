package msgpass

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
)

// actionNamed returns the ID of the algorithm's action with the given
// name, or -1 if it has none.
func actionNamed(alg core.Algorithm, name string) core.ActionID {
	for i, s := range alg.Actions() {
		if s.Name == name {
			return core.ActionID(i)
		}
	}
	return -1
}

// Snapshot is one node's externally observable state at publish time.
type Snapshot struct {
	// State and Depth mirror the node's variables.
	State core.State
	Depth int
	// Dead reports whether the node has halted.
	Dead bool
	// Events counts the node's processed events.
	Events int64
	// Eats counts completed eating sessions.
	Eats int64
	// Incarnation counts the node's restarts: 0 for the original boot,
	// incremented every time Restart revives the node. External
	// controllers fence state tied to an older incarnation.
	Incarnation int64
}

// RestartMode selects the state a revived node boots with.
type RestartMode int

const (
	// RestartClean revives the node in the legitimate initial state
	// (Thinking, depth zero, zeroed edge caches). The peers' caches
	// still disagree, so even a clean restart leans on stabilization.
	RestartClean RestartMode = iota + 1
	// RestartArbitrary revives the node with InitArbitrary-style
	// domain-respecting garbage — a malicious recovery, converging only
	// because the protocol stabilizes.
	RestartArbitrary
)

// String names the mode for traces and status displays.
func (m RestartMode) String() string {
	if m == RestartArbitrary {
		return "arbitrary"
	}
	return "clean"
}

// Network assembles and runs a message-passing diners system.
type Network struct {
	cfg   Config
	nodes []*node
	wg    sync.WaitGroup
	done  chan struct{}

	started bool
	stopped bool

	// driven marks a network owned by an external single-threaded driver
	// (see NewDriven): Start must not spawn the goroutine loop.
	driven bool
	// now is the network's clock. The goroutine runtime uses time.Now; a
	// deterministic driver substitutes a virtual clock so eating-session
	// intervals become exact, replayable instants.
	now func() time.Time

	// control flags polled by nodes each event
	killFlag    []atomic.Bool
	malFlag     []atomic.Int32
	restartFlag []atomic.Int32 // pending RestartMode (0 = none)
	needsFlag   []atomic.Bool  // dynamic needs():p, refreshed by nodes per event

	mu        sync.Mutex
	table     []Snapshot   // guarded by mu
	eats      []int64      // guarded by mu
	sessions  []EatSession // guarded by mu
	openSince []time.Time  // guarded by mu
	// garbagePending marks nodes with a garbage restart issued but no
	// session opened since; the next session they open carries the
	// EatSession.PostGarbage exemption. openPostGarbage carries that
	// mark from open to close. Both guarded by mu.
	garbagePending  []bool
	openPostGarbage []bool

	sent    atomic.Int64
	dropped atomic.Int64
	lost    atomic.Int64
	lossCtr atomic.Uint64

	restarts         atomic.Int64
	reconnects       atomic.Int64
	faultsDropped    atomic.Int64
	faultsDuplicated atomic.Int64
	faultsCorrupted  atomic.Int64
	faultsDelayed    atomic.Int64

	delayMu sync.Mutex
	delayed map[delayKey][]message // stalled channels' queued frames; guarded by delayMu

	isolated []atomic.Bool // transiently partitioned nodes

	// sendFrame, when non-nil, carries frames over an external transport
	// (e.g. TCP; see NewTCPNetwork) instead of the in-process channel
	// push. The transport calls inject on the receiving side. delayTicks
	// is only non-zero in driven mode, where the driver owns delays.
	sendFrame func(to graph.ProcID, m message, delayTicks int) bool
	// onStop tears the external transport down; it runs after the node
	// goroutines are signaled and before they are awaited, so blocked
	// transport reads unblock.
	onStop func()
	// onRestart lets the transport react to a node revival (the TCP
	// transport severs the node's sockets so its edges reconnect).
	onRestart func(p graph.ProcID)
}

// NewNetwork builds a network in the legitimate initial state (all
// Thinking, depth zero, lower-ID endpoints holding priority and tokens).
func NewNetwork(cfg Config) *Network {
	if cfg.Graph == nil {
		panic("msgpass: Config.Graph is required")
	}
	if cfg.Algorithm == nil {
		panic("msgpass: Config.Algorithm is required")
	}
	if cfg.EatEvents <= 0 {
		cfg.EatEvents = 2
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = time.Millisecond
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 256
	}
	g := cfg.Graph
	nw := &Network{
		cfg:             cfg,
		now:             time.Now,
		done:            make(chan struct{}),
		table:           make([]Snapshot, g.N()),
		eats:            make([]int64, g.N()),
		openSince:       make([]time.Time, g.N()),
		garbagePending:  make([]bool, g.N()),
		openPostGarbage: make([]bool, g.N()),
		killFlag:        make([]atomic.Bool, g.N()),
		malFlag:         make([]atomic.Int32, g.N()),
		restartFlag:     make([]atomic.Int32, g.N()),
		needsFlag:       make([]atomic.Bool, g.N()),
		isolated:        make([]atomic.Bool, g.N()),
		delayed:         make(map[delayKey][]message),
	}
	d := g.Diameter()
	if cfg.DiameterOverride > 0 {
		d = cfg.DiameterOverride
	}
	nw.nodes = make([]*node, g.N())
	for p := 0; p < g.N(); p++ {
		pid := graph.ProcID(p)
		hungry := true
		if cfg.Hungry != nil {
			hungry = cfg.Hungry[p]
		}
		nw.needsFlag[p].Store(hungry)
		nd := &node{
			net:     nw,
			id:      pid,
			alg:     cfg.Algorithm,
			enterID: actionNamed(cfg.Algorithm, "enter"),
			exitID:  actionNamed(cfg.Algorithm, "exit"),
			state:   core.Thinking,
			hungry:  hungry,
			d:       d,
			rng:     rand.New(rand.NewSource(cfg.Seed + int64(p)*7919)),
			inbox:   make(chan message, cfg.InboxSize),
		}
		nbrs := g.Neighbors(pid)
		idxs := g.IncidentEdgeIndices(pid)
		nd.edges = make([]edgeState, len(nbrs))
		for i, q := range nbrs {
			e := g.Edges()[idxs[i]]
			nd.edges[i] = edgeState{
				idx:       idxs[i],
				peer:      q,
				low:       pid == e.A,
				peerState: core.Thinking,
				priority:  e.A, // lower ID is the ancestor initially
				heard:     true,
			}
		}
		nw.nodes[p] = nd
		nw.table[p] = Snapshot{State: core.Thinking}
	}
	return nw
}

// InitArbitrary corrupts every node's variables, caches, and counters
// with domain-respecting garbage before Start — the message-passing
// equivalent of a transient fault hitting the whole system.
//
//lint:allow edgeownership fault injector: deliberately violates the write model, single-threaded before Start
func (nw *Network) InitArbitrary(seed int64) {
	if nw.started {
		panic("msgpass: InitArbitrary must precede Start")
	}
	rng := rand.New(rand.NewSource(seed))
	for _, nd := range nw.nodes {
		nd.state = core.State(rng.Intn(3) + 1)
		nd.depth = rng.Intn(2*nd.d + 4)
		for i := range nd.edges {
			e := &nd.edges[i]
			e.counter = uint8(rng.Intn(kStates))
			e.peerCounter = uint8(rng.Intn(kStates))
			e.peerState = core.State(rng.Intn(3) + 1)
			e.peerDepth = rng.Intn(2*nd.d + 4)
			if rng.Intn(2) == 0 {
				e.priority = nd.id
			} else {
				e.priority = e.peer
			}
			e.pendingYield = rng.Intn(4) == 0
		}
	}
}

// Start launches one goroutine per node. It may be called once.
func (nw *Network) Start() {
	if nw.driven {
		panic("msgpass: a driven network is stepped by its driver, not Started")
	}
	if nw.started {
		panic("msgpass: Start called twice")
	}
	nw.started = true
	for _, nd := range nw.nodes {
		nw.wg.Add(1)
		go nd.runGuarded()
	}
}

// runGuarded wraps run with the control-flag polling.
func (n *node) runGuarded() {
	defer n.net.wg.Done()
	ticker := time.NewTicker(n.net.cfg.TickEvery)
	defer ticker.Stop()
	n.gossipAll()
	for {
		select {
		case <-n.net.done:
			return
		case m := <-n.inbox:
			n.pollControl()
			n.handle(m)
		case <-ticker.C:
			n.pollControl()
			n.onEvent()
			n.gossipAll()
		}
	}
}

// pollControl applies pending kill / malicious-crash commands. Crashing
// (either way) ends any live eating session at that instant: the frozen
// or garbage E value a dead process leaves behind is a corrupted
// variable, not an eating session, and the safety property exempts it
// ("two neighbors eat together only if both are dead").
func (n *node) pollControl() {
	if v := n.net.restartFlag[n.id].Swap(0); v != 0 {
		n.applyRestart(RestartMode(v))
	}
	if n.net.killFlag[n.id].Load() && !n.dead {
		n.dead = true
		n.net.closeOpenSession(n.id)
		n.publish()
	}
	if v := n.net.malFlag[n.id].Swap(0); v > 0 && !n.dead && n.malSteps == 0 {
		n.malSteps = int(v)
		n.net.closeOpenSession(n.id)
	}
}

// Stop terminates all node goroutines and waits for them.
func (nw *Network) Stop() {
	if !nw.started || nw.stopped {
		return
	}
	nw.stopped = true
	close(nw.done)
	if nw.onStop != nil {
		nw.onStop()
	}
	nw.wg.Wait()
	nw.finishSessions()
}

// finishSessions closes any eating session left open so interval checks
// see it.
func (nw *Network) finishSessions() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	now := nw.now()
	for p, since := range nw.openSince {
		if !since.IsZero() {
			nw.sessions = append(nw.sessions, EatSession{Proc: graph.ProcID(p), Start: since, End: now, PostGarbage: nw.openPostGarbage[p]})
			nw.openSince[p] = time.Time{}
			nw.openPostGarbage[p] = false
		}
	}
}

// Kill benignly crashes node p: it halts at its next event.
func (nw *Network) Kill(p graph.ProcID) { nw.killFlag[p].Store(true) }

// Restart revives node p at its next event — the inverse of Kill the
// paper's recovery story needs. The node reboots into a new incarnation
// with either the legitimate initial state (RestartClean) or arbitrary
// garbage (RestartArbitrary); either way its neighbors' caches disagree
// with it, and stabilization is what re-converges the system. Pending
// kill and malicious-crash commands are cancelled; an external
// transport is told to reconnect the node's edges. Restarting a live
// node is a reboot. Safe to call from any goroutine.
func (nw *Network) Restart(p graph.ProcID, mode RestartMode) {
	if mode != RestartArbitrary {
		mode = RestartClean
	}
	nw.killFlag[p].Store(false)
	nw.malFlag[p].Store(0)
	if mode == RestartArbitrary {
		nw.mu.Lock()
		nw.garbagePending[p] = true
		nw.mu.Unlock()
	}
	nw.restartFlag[p].Store(int32(mode))
	nw.restarts.Add(1)
	if nw.onRestart != nil {
		nw.onRestart(p)
	}
}

// Restarts returns how many node restarts were requested.
func (nw *Network) Restarts() int64 { return nw.restarts.Load() }

// Reconnects returns how many transport edge connections were
// re-established (TCP transport only; in-process edges never drop).
func (nw *Network) Reconnects() int64 { return nw.reconnects.Load() }

// FaultsInjected returns the injected-fault counters: frames dropped,
// duplicated, corrupted, and delayed by the configured FaultInjector.
func (nw *Network) FaultsInjected() (dropped, duplicated, corrupted, delayed int64) {
	return nw.faultsDropped.Load(), nw.faultsDuplicated.Load(),
		nw.faultsCorrupted.Load(), nw.faultsDelayed.Load()
}

// SetNeeds dynamically sets needs():p — whether node p currently wants to
// eat. It is safe to call from any goroutine at any time; the node picks
// the new value up at its next event, so within one atomic event the
// guard evaluations still agree (the paper lets needs() "evaluate to true
// arbitrarily"). This is the control surface external demand sources
// (e.g. the lock service) use to turn client requests into hunger.
func (nw *Network) SetNeeds(p graph.ProcID, hungry bool) { nw.needsFlag[p].Store(hungry) }

// Needs returns the currently requested needs():p value.
func (nw *Network) Needs(p graph.ProcID) bool { return nw.needsFlag[p].Load() }

// Graph returns the network's topology.
func (nw *Network) Graph() *graph.Graph { return nw.cfg.Graph }

// Snapshot returns node p's latest published snapshot.
func (nw *Network) Snapshot(p graph.ProcID) Snapshot {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.table[p]
}

// SetPartitioned transiently isolates node p: while set, every frame to
// or from p is lost in transit (the node itself keeps running). Because
// every frame is full-state gossip, healing the partition lets the
// protocol resynchronize without any special recovery path — the
// stabilization property doing its job at the transport level.
func (nw *Network) SetPartitioned(p graph.ProcID, isolated bool) {
	nw.isolated[p].Store(isolated)
}

// CrashMaliciously gives node p a window of arbitrarySteps garbage events
// before it halts.
func (nw *Network) CrashMaliciously(p graph.ProcID, arbitrarySteps int) {
	if arbitrarySteps <= 0 {
		nw.Kill(p)
		return
	}
	nw.malFlag[p].Store(int32(arbitrarySteps))
}

// deliver routes a frame to p's inbox without blocking; overflow drops
// the frame (the periodic gossip retransmits all protocol state), and the
// configured loss rate drops frames at random, which the protocol must
// likewise absorb.
func (nw *Network) deliver(p graph.ProcID, m message) {
	nw.sent.Add(1)
	if nw.isolated[p].Load() || nw.isolated[m.from].Load() {
		nw.lost.Add(1) // partitioned: the frame is lost in transit
		return
	}
	if r := nw.cfg.LossRate; r > 0 {
		h := splitmix(uint64(nw.cfg.Seed) ^ nw.lossCtr.Add(1)*0x9e3779b97f4a7c15)
		if float64(h>>11)/float64(1<<53) < r {
			nw.lost.Add(1)
			return
		}
	}
	if nw.cfg.Faults != nil {
		nw.applyFaults(p, m)
		return
	}
	nw.transmitNow(p, m)
}

// inject pushes a frame into p's inbox without blocking; overflow drops
// the frame. External transports call this on the receiving side.
func (nw *Network) inject(p graph.ProcID, m message) {
	select {
	case nw.nodes[p].inbox <- m:
	default:
		nw.dropped.Add(1)
	}
}

// splitmix is the splitmix64 finalizer, giving deliver a cheap
// thread-safe random stream.
func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// publish records a node's observable state and notifies the snapshot
// hook (outside the lock).
func (nw *Network) publish(p graph.ProcID, s core.State, depth int, dead bool, events, inc int64) {
	nw.mu.Lock()
	snap := Snapshot{
		State:       s,
		Depth:       depth,
		Dead:        dead,
		Events:      events,
		Eats:        nw.eats[p],
		Incarnation: inc,
	}
	nw.table[p] = snap
	nw.mu.Unlock()
	if nw.cfg.OnSnapshot != nil {
		nw.cfg.OnSnapshot(p, snap)
	}
}

// closeOpenSession ends p's eating session (if any) at the current
// instant without counting it as a completed meal.
func (nw *Network) closeOpenSession(p graph.ProcID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if since := nw.openSince[p]; !since.IsZero() {
		nw.sessions = append(nw.sessions, EatSession{Proc: p, Start: since, End: nw.now(), PostGarbage: nw.openPostGarbage[p]})
		nw.openSince[p] = time.Time{}
		nw.openPostGarbage[p] = false
	}
}

// recordEatStart opens an eating session for p. The first session after
// a garbage restart inherits the PostGarbage exemption (see EatSession).
func (nw *Network) recordEatStart(p graph.ProcID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.openSince[p] = nw.now()
	nw.openPostGarbage[p] = nw.garbagePending[p]
	nw.garbagePending[p] = false
}

// recordEatEnd closes p's eating session and counts it. Exiting Eating
// with no session open means the node never legitimately entered — it
// booted or restarted into a garbage Eating state (InitArbitrary,
// RestartArbitrary) — so there is no meal to count and no interval to
// record; fabricating one from a stale eatStart would charge a
// pre-crash incarnation's timestamp to the new one.
func (nw *Network) recordEatEnd(p graph.ProcID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	since := nw.openSince[p]
	if since.IsZero() {
		return
	}
	nw.eats[p]++
	nw.sessions = append(nw.sessions, EatSession{Proc: p, Start: since, End: nw.now(), PostGarbage: nw.openPostGarbage[p]})
	nw.openSince[p] = time.Time{}
	nw.openPostGarbage[p] = false
}

// Table returns a copy of the current snapshot table.
func (nw *Network) Table() []Snapshot {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]Snapshot, len(nw.table))
	copy(out, nw.table)
	return out
}

// Eats returns completed eating sessions per node.
func (nw *Network) Eats() []int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]int64(nil), nw.eats...)
}

// Sessions returns all completed eating sessions.
func (nw *Network) Sessions() []EatSession {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]EatSession(nil), nw.sessions...)
}

// MessagesSent returns the total frames sent (including dropped).
func (nw *Network) MessagesSent() int64 { return nw.sent.Load() }

// MessagesDropped returns frames dropped to full inboxes.
func (nw *Network) MessagesDropped() int64 { return nw.dropped.Load() }

// MessagesLost returns frames dropped by the configured loss rate.
func (nw *Network) MessagesLost() int64 { return nw.lost.Load() }

// OverlappingNeighborSessions returns pairs of completed sessions by
// neighboring nodes whose intervals overlap — safety violations of the
// message-passing system. Sessions flagged PostGarbage are exempt: a
// garbage-restarted node's first meal sits inside the stabilization
// window, where the paper promises convergence, not exclusion.
func (nw *Network) OverlappingNeighborSessions() []string {
	sessions := nw.Sessions()
	g := nw.cfg.Graph
	var bad []string
	for i := 0; i < len(sessions); i++ {
		for j := i + 1; j < len(sessions); j++ {
			a, b := sessions[i], sessions[j]
			if a.Proc == b.Proc || !g.HasEdge(a.Proc, b.Proc) {
				continue
			}
			if a.PostGarbage || b.PostGarbage {
				continue
			}
			if a.Start.Before(b.End) && b.Start.Before(a.End) {
				bad = append(bad, fmt.Sprintf("%d@[%v,%v] overlaps %d@[%v,%v]",
					a.Proc, a.Start, a.End, b.Proc, b.Start, b.End))
			}
		}
	}
	return bad
}
