package msgpass

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
)

// actionNamed returns the ID of the algorithm's action with the given
// name, or -1 if it has none.
func actionNamed(alg core.Algorithm, name string) core.ActionID {
	for i, s := range alg.Actions() {
		if s.Name == name {
			return core.ActionID(i)
		}
	}
	return -1
}

// Snapshot is one node's externally observable state at publish time.
type Snapshot struct {
	// State and Depth mirror the node's variables.
	State core.State
	Depth int
	// Dead reports whether the node has halted.
	Dead bool
	// Events counts the node's processed events.
	Events int64
	// Eats counts completed eating sessions.
	Eats int64
	// Incarnation counts the node's restarts: 0 for the original boot,
	// incremented every time Restart revives the node. External
	// controllers fence state tied to an older incarnation.
	Incarnation int64
}

// RestartMode selects the state a revived node boots with.
type RestartMode int

const (
	// RestartClean revives the node in the legitimate initial state
	// (Thinking, depth zero, zeroed edge caches). The peers' caches
	// still disagree, so even a clean restart leans on stabilization.
	RestartClean RestartMode = iota + 1
	// RestartArbitrary revives the node with InitArbitrary-style
	// domain-respecting garbage — a malicious recovery, converging only
	// because the protocol stabilizes.
	RestartArbitrary
)

// String names the mode for traces and status displays.
func (m RestartMode) String() string {
	if m == RestartArbitrary {
		return "arbitrary"
	}
	return "clean"
}

// roster is the per-process control plane: the node handles and the
// atomic control flags node goroutines poll. It is replaced wholesale
// (copy-on-write) behind Network.procs so runtime membership
// (AddProcess) can extend it while node goroutines and controllers keep
// reading lock-free: elements are pointers, so an element's address is
// stable across growth, and a stale roster load still resolves every
// process that existed when it was taken.
type roster struct {
	nodes    []*node
	kill     []*atomic.Bool
	mal      []*atomic.Int32 // pending malicious window (steps)
	restart  []*atomic.Int32 // pending RestartMode (0 = none)
	needs    []*atomic.Bool  // dynamic needs():p, refreshed by nodes per event
	isolated []*atomic.Bool  // transiently partitioned nodes
	edgeOps  []*atomic.Bool  // hint: pending membership edge ops for p
}

// n returns the process count of this roster generation.
func (r *roster) n() int { return len(r.nodes) }

// grow returns a new roster with nd appended. Existing flag pointers are
// shared, so controllers holding the old roster still command the same
// processes.
func (r *roster) grow(nd *node) *roster {
	return &roster{
		nodes:    append(append([]*node(nil), r.nodes...), nd),
		kill:     append(append([]*atomic.Bool(nil), r.kill...), new(atomic.Bool)),
		mal:      append(append([]*atomic.Int32(nil), r.mal...), new(atomic.Int32)),
		restart:  append(append([]*atomic.Int32(nil), r.restart...), new(atomic.Int32)),
		needs:    append(append([]*atomic.Bool(nil), r.needs...), new(atomic.Bool)),
		isolated: append(append([]*atomic.Bool(nil), r.isolated...), new(atomic.Bool)),
		edgeOps:  append(append([]*atomic.Bool(nil), r.edgeOps...), new(atomic.Bool)),
	}
}

// Network assembles and runs a message-passing diners system.
type Network struct {
	cfg  Config
	wg   sync.WaitGroup
	done chan struct{}

	// lifeMu orders Start/Stop against membership goroutine spawns, so a
	// process added mid-run never races the final wg.Wait.
	lifeMu  sync.Mutex
	started bool // guarded by lifeMu
	stopped bool // guarded by lifeMu

	// driven marks a network owned by an external single-threaded driver
	// (see NewDriven): Start must not spawn the goroutine loop.
	driven bool
	// now is the network's clock. The goroutine runtime uses time.Now; a
	// deterministic driver substitutes a virtual clock so eating-session
	// intervals become exact, replayable instants.
	now func() time.Time

	// procs is the current process roster (copy-on-write; see roster).
	procs atomic.Pointer[roster]

	// d is the diameter constant D every node boots with. Runtime joins
	// inherit it: the paper treats D as a system-wide constant, so
	// membership assumes the configured bound still covers the grown
	// graph (detsim churn runs pass a generous DiameterOverride).
	d int

	// Membership state. curGraph is the live topology, replaced wholesale
	// on every splice so readers get an immutable graph lock-free;
	// everything else is guarded by memMu. Lock order: memMu before mu.
	memMu      sync.Mutex
	curGraph   atomic.Pointer[graph.Graph]
	curAdj     map[graph.Edge]bool       // guarded by memMu
	everAdj    map[graph.Edge]bool       // guarded by memMu
	departed   []bool                    // guarded by memMu
	edgeIDs    map[graph.Edge]int        // guarded by memMu
	nextEdgeID int                       // guarded by memMu
	pendingOps map[graph.ProcID][]edgeOp // guarded by memMu

	// external marks a network whose frames ride an external transport
	// (TCP): runtime membership is disabled there, because the transport
	// pins one socket per static edge.
	external bool

	mu        sync.Mutex
	table     []Snapshot   // guarded by mu
	eats      []int64      // guarded by mu
	sessions  []EatSession // guarded by mu
	openSince []time.Time  // guarded by mu
	// garbagePending marks nodes with a garbage restart issued but no
	// session opened since; the next session they open carries the
	// EatSession.PostGarbage exemption. openPostGarbage carries that
	// mark from open to close. Both guarded by mu.
	garbagePending  []bool
	openPostGarbage []bool

	sent    atomic.Int64
	dropped atomic.Int64
	lost    atomic.Int64
	lossCtr atomic.Uint64

	restarts         atomic.Int64
	reconnects       atomic.Int64
	faultsDropped    atomic.Int64
	faultsDuplicated atomic.Int64
	faultsCorrupted  atomic.Int64
	faultsDelayed    atomic.Int64

	joins  atomic.Int64
	leaves atomic.Int64

	delayMu sync.Mutex
	delayed map[delayKey][]message // stalled channels' queued frames; guarded by delayMu

	// sendFrame, when non-nil, carries frames over an external transport
	// (e.g. TCP; see NewTCPNetwork) instead of the in-process channel
	// push. The transport calls inject on the receiving side. delayTicks
	// is only non-zero in driven mode, where the driver owns delays.
	sendFrame func(to graph.ProcID, m message, delayTicks int) bool
	// onStop tears the external transport down; it runs after the node
	// goroutines are signaled and before they are awaited, so blocked
	// transport reads unblock.
	onStop func()
	// onRestart lets the transport react to a node revival (the TCP
	// transport severs the node's sockets so its edges reconnect).
	onRestart func(p graph.ProcID)
}

// NewNetwork builds a network in the legitimate initial state (all
// Thinking, depth zero, lower-ID endpoints holding priority and tokens).
func NewNetwork(cfg Config) *Network {
	if cfg.Graph == nil {
		panic("msgpass: Config.Graph is required")
	}
	if cfg.Algorithm == nil {
		panic("msgpass: Config.Algorithm is required")
	}
	if cfg.EatEvents <= 0 {
		cfg.EatEvents = 2
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = time.Millisecond
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 256
	}
	g := cfg.Graph
	nw := &Network{
		cfg:             cfg,
		now:             time.Now,
		done:            make(chan struct{}),
		table:           make([]Snapshot, g.N()),
		eats:            make([]int64, g.N()),
		openSince:       make([]time.Time, g.N()),
		garbagePending:  make([]bool, g.N()),
		openPostGarbage: make([]bool, g.N()),
		curAdj:          make(map[graph.Edge]bool, g.EdgeCount()),
		everAdj:         make(map[graph.Edge]bool, g.EdgeCount()),
		departed:        make([]bool, g.N()),
		edgeIDs:         make(map[graph.Edge]int, g.EdgeCount()),
		nextEdgeID:      g.EdgeCount(),
		pendingOps:      make(map[graph.ProcID][]edgeOp),
		delayed:         make(map[delayKey][]message),
	}
	nw.curGraph.Store(g)
	for i, e := range g.Edges() {
		nw.curAdj[e] = true
		nw.everAdj[e] = true
		nw.edgeIDs[e] = i
	}
	d := g.Diameter()
	if cfg.DiameterOverride > 0 {
		d = cfg.DiameterOverride
	}
	nw.d = d
	ros := &roster{
		nodes:    make([]*node, g.N()),
		kill:     make([]*atomic.Bool, g.N()),
		mal:      make([]*atomic.Int32, g.N()),
		restart:  make([]*atomic.Int32, g.N()),
		needs:    make([]*atomic.Bool, g.N()),
		isolated: make([]*atomic.Bool, g.N()),
		edgeOps:  make([]*atomic.Bool, g.N()),
	}
	for p := 0; p < g.N(); p++ {
		ros.kill[p] = new(atomic.Bool)
		ros.mal[p] = new(atomic.Int32)
		ros.restart[p] = new(atomic.Int32)
		ros.needs[p] = new(atomic.Bool)
		ros.isolated[p] = new(atomic.Bool)
		ros.edgeOps[p] = new(atomic.Bool)
	}
	for p := 0; p < g.N(); p++ {
		pid := graph.ProcID(p)
		hungry := true
		if cfg.Hungry != nil {
			hungry = cfg.Hungry[p]
		}
		ros.needs[p].Store(hungry)
		nd := nw.newNode(pid, hungry, ros)
		nbrs := g.Neighbors(pid)
		idxs := g.IncidentEdgeIndices(pid)
		nd.edges = make([]edgeState, len(nbrs))
		for i, q := range nbrs {
			e := g.Edges()[idxs[i]]
			nd.edges[i] = edgeState{
				idx:       idxs[i],
				peer:      q,
				low:       pid == e.A,
				peerState: core.Thinking,
				priority:  e.A, // lower ID is the ancestor initially
				heard:     true,
			}
		}
		nd.refreshNeighbors()
		ros.nodes[p] = nd
		nw.table[p] = Snapshot{State: core.Thinking}
	}
	nw.procs.Store(ros)
	return nw
}

// newNode allocates node pid with its control-flag pointers taken from
// ros (which must already have slot pid).
func (nw *Network) newNode(pid graph.ProcID, hungry bool, ros *roster) *node {
	nd := &node{
		net:        nw,
		id:         pid,
		alg:        nw.cfg.Algorithm,
		enterID:    actionNamed(nw.cfg.Algorithm, "enter"),
		exitID:     actionNamed(nw.cfg.Algorithm, "exit"),
		numActions: len(nw.cfg.Algorithm.Actions()),
		state:      core.Thinking,
		hungry:     hungry,
		d:          nw.d,
		rng:        rand.New(rand.NewSource(nw.cfg.Seed + int64(pid)*7919)),
		inbox:      make(chan message, nw.cfg.InboxSize),
		wakeCh:     make(chan struct{}, 1),
		ctlKill:    ros.kill[pid],
		ctlMal:     ros.mal[pid],
		ctlRst:     ros.restart[pid],
		ctlNeed:    ros.needs[pid],
		ctlOps:     ros.edgeOps[pid],
	}
	nd.view.n = nd
	return nd
}

// InitArbitrary corrupts every node's variables, caches, and counters
// with domain-respecting garbage before Start — the message-passing
// equivalent of a transient fault hitting the whole system.
//
//lint:allow edgeownership fault injector: deliberately violates the write model, single-threaded before Start
func (nw *Network) InitArbitrary(seed int64) {
	nw.lifeMu.Lock()
	started := nw.started
	nw.lifeMu.Unlock()
	if started {
		panic("msgpass: InitArbitrary must precede Start")
	}
	rng := rand.New(rand.NewSource(seed))
	for _, nd := range nw.procs.Load().nodes {
		nd.state = core.State(rng.Intn(3) + 1)
		nd.depth = rng.Intn(2*nd.d + 4)
		for i := range nd.edges {
			e := &nd.edges[i]
			e.counter = uint8(rng.Intn(kStates))
			e.peerCounter = uint8(rng.Intn(kStates))
			e.peerState = core.State(rng.Intn(3) + 1)
			e.peerDepth = rng.Intn(2*nd.d + 4)
			if rng.Intn(2) == 0 {
				e.priority = nd.id
			} else {
				e.priority = e.peer
			}
			e.pendingYield = rng.Intn(4) == 0
		}
	}
}

// Start launches one goroutine per node. It may be called once.
func (nw *Network) Start() {
	if nw.driven {
		panic("msgpass: a driven network is stepped by its driver, not Started")
	}
	nw.lifeMu.Lock()
	if nw.started {
		nw.lifeMu.Unlock()
		panic("msgpass: Start called twice")
	}
	nw.started = true
	for _, nd := range nw.procs.Load().nodes {
		nw.wg.Add(1)
		go nd.runGuarded()
	}
	nw.lifeMu.Unlock()
}

// runGuarded wraps run with the control-flag polling.
func (n *node) runGuarded() {
	defer n.net.wg.Done()
	ticker := time.NewTicker(n.net.cfg.TickEvery)
	defer ticker.Stop()
	n.gossipAll()
	for {
		select {
		case <-n.net.done:
			return
		case m := <-n.inbox:
			n.pollControl()
			n.handle(m)
		case <-ticker.C:
			n.pollControl()
			n.onEvent()
			n.gossipAll()
		case <-n.wakeCh:
			// Demand-driven event: run one event now so a fresh needs()
			// value is acted on at transport latency, not tick latency.
			// Gossip only on a state change — an unchanged node has
			// nothing new to announce, and unconditional gossip here
			// would turn a hot demand source into a frame storm.
			n.pollControl()
			before := n.state
			n.onEvent()
			if n.state != before {
				n.gossipAll()
			}
		}
	}
}

// pollControl applies pending membership splices and kill /
// malicious-crash commands. Edge ops come first so a revival always
// reboots over the already-spliced edge set. Crashing (either way) ends
// any live eating session at that instant: the frozen or garbage E value
// a dead process leaves behind is a corrupted variable, not an eating
// session, and the safety property exempts it ("two neighbors eat
// together only if both are dead").
func (n *node) pollControl() {
	if n.ctlOps.Load() && n.ctlOps.Swap(false) {
		n.applyEdgeOps()
	}
	if v := n.ctlRst.Swap(0); v != 0 {
		n.applyRestart(RestartMode(v))
	}
	if n.ctlKill.Load() && !n.dead {
		n.dead = true
		n.net.closeOpenSession(n.id)
		n.publish()
	}
	if v := n.ctlMal.Swap(0); v > 0 && !n.dead && n.malSteps == 0 {
		n.malSteps = int(v)
		n.net.closeOpenSession(n.id)
	}
}

// Stop terminates all node goroutines and waits for them.
func (nw *Network) Stop() {
	nw.lifeMu.Lock()
	if !nw.started || nw.stopped {
		nw.lifeMu.Unlock()
		return
	}
	nw.stopped = true
	nw.lifeMu.Unlock()
	close(nw.done)
	if nw.onStop != nil {
		nw.onStop()
	}
	nw.wg.Wait()
	nw.finishSessions()
}

// finishSessions closes any eating session left open so interval checks
// see it.
func (nw *Network) finishSessions() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	now := nw.now()
	for p, since := range nw.openSince {
		if !since.IsZero() {
			nw.sessions = append(nw.sessions, EatSession{Proc: graph.ProcID(p), Start: since, End: now, PostGarbage: nw.openPostGarbage[p]})
			nw.openSince[p] = time.Time{}
			nw.openPostGarbage[p] = false
		}
	}
}

// Kill benignly crashes node p: it halts at its next event.
func (nw *Network) Kill(p graph.ProcID) { nw.procs.Load().kill[p].Store(true) }

// Restart revives node p at its next event — the inverse of Kill the
// paper's recovery story needs. The node reboots into a new incarnation
// with either the legitimate initial state (RestartClean) or arbitrary
// garbage (RestartArbitrary); either way its neighbors' caches disagree
// with it, and stabilization is what re-converges the system. Pending
// kill and malicious-crash commands are cancelled; an external
// transport is told to reconnect the node's edges. Restarting a live
// node is a reboot; restarting a departed node is a no-op — a process
// spliced out of the conflict graph has no edges to reboot onto, and
// only JoinProcess may bring it back. Safe to call from any goroutine.
func (nw *Network) Restart(p graph.ProcID, mode RestartMode) {
	if nw.Departed(p) {
		return
	}
	if mode != RestartArbitrary {
		mode = RestartClean
	}
	ros := nw.procs.Load()
	ros.kill[p].Store(false)
	ros.mal[p].Store(0)
	if mode == RestartArbitrary {
		nw.mu.Lock()
		nw.garbagePending[p] = true
		nw.mu.Unlock()
	}
	ros.restart[p].Store(int32(mode))
	nw.restarts.Add(1)
	if nw.onRestart != nil {
		nw.onRestart(p)
	}
}

// Restarts returns how many node restarts were requested.
func (nw *Network) Restarts() int64 { return nw.restarts.Load() }

// Reconnects returns how many transport edge connections were
// re-established (TCP transport only; in-process edges never drop).
func (nw *Network) Reconnects() int64 { return nw.reconnects.Load() }

// FaultsInjected returns the injected-fault counters: frames dropped,
// duplicated, corrupted, and delayed by the configured FaultInjector.
func (nw *Network) FaultsInjected() (dropped, duplicated, corrupted, delayed int64) {
	return nw.faultsDropped.Load(), nw.faultsDuplicated.Load(),
		nw.faultsCorrupted.Load(), nw.faultsDelayed.Load()
}

// SetNeeds dynamically sets needs():p — whether node p currently wants to
// eat. It is safe to call from any goroutine at any time; the node picks
// the new value up at its next event, so within one atomic event the
// guard evaluations still agree (the paper lets needs() "evaluate to true
// arbitrarily"). This is the control surface external demand sources
// (e.g. the lock service) use to turn client requests into hunger.
func (nw *Network) SetNeeds(p graph.ProcID, hungry bool) { nw.procs.Load().needs[p].Store(hungry) }

// Wake schedules an immediate extra event for node p, so a needs()
// change just written with SetNeeds is acted on now instead of at p's
// next gossip tick. Demand sources (the lock service) call it on the
// grant path; without it every acquire pays up to one tick period of
// pure waiting, which is the dominant latency once the transport is
// microseconds. Wakes coalesce (capacity-1 channel) and are a no-op on
// a driven network, whose driver owns all event scheduling. Safe to
// call from any goroutine.
func (nw *Network) Wake(p graph.ProcID) {
	select {
	case nw.procs.Load().nodes[p].wakeCh <- struct{}{}:
	default:
	}
}

// Needs returns the currently requested needs():p value.
func (nw *Network) Needs(p graph.ProcID) bool { return nw.procs.Load().needs[p].Load() }

// Graph returns the network's current topology. With runtime membership
// the returned graph is an immutable generation: splices install a new
// one, so a held reference stays internally consistent.
func (nw *Network) Graph() *graph.Graph { return nw.curGraph.Load() }

// N returns the current process count, including departed (retired)
// processes, whose IDs are never reused.
func (nw *Network) N() int { return nw.procs.Load().n() }

// Snapshot returns node p's latest published snapshot.
func (nw *Network) Snapshot(p graph.ProcID) Snapshot {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.table[p]
}

// SetPartitioned transiently isolates node p: while set, every frame to
// or from p is lost in transit (the node itself keeps running). Because
// every frame is full-state gossip, healing the partition lets the
// protocol resynchronize without any special recovery path — the
// stabilization property doing its job at the transport level.
func (nw *Network) SetPartitioned(p graph.ProcID, isolated bool) {
	nw.procs.Load().isolated[p].Store(isolated)
}

// CrashMaliciously gives node p a window of arbitrarySteps garbage events
// before it halts.
func (nw *Network) CrashMaliciously(p graph.ProcID, arbitrarySteps int) {
	if arbitrarySteps <= 0 {
		nw.Kill(p)
		return
	}
	nw.procs.Load().mal[p].Store(int32(arbitrarySteps))
}

// deliver routes a frame to p's inbox without blocking; overflow drops
// the frame (the periodic gossip retransmits all protocol state), and the
// configured loss rate drops frames at random, which the protocol must
// likewise absorb.
func (nw *Network) deliver(p graph.ProcID, m message) {
	nw.sent.Add(1)
	ros := nw.procs.Load()
	if ros.isolated[p].Load() || ros.isolated[m.from].Load() {
		nw.lost.Add(1) // partitioned: the frame is lost in transit
		return
	}
	if r := nw.cfg.LossRate; r > 0 {
		h := splitmix(uint64(nw.cfg.Seed) ^ nw.lossCtr.Add(1)*0x9e3779b97f4a7c15)
		if float64(h>>11)/float64(1<<53) < r {
			nw.lost.Add(1)
			return
		}
	}
	if nw.cfg.Faults != nil {
		nw.applyFaults(p, m)
		return
	}
	nw.transmitNow(p, m)
}

// inject pushes a frame into p's inbox without blocking; overflow drops
// the frame. External transports call this on the receiving side.
func (nw *Network) inject(p graph.ProcID, m message) {
	select {
	case nw.procs.Load().nodes[p].inbox <- m:
	default:
		nw.dropped.Add(1)
	}
}

// splitmix is the splitmix64 finalizer, giving deliver a cheap
// thread-safe random stream.
func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// publish records a node's observable state and notifies the snapshot
// hook (outside the lock).
func (nw *Network) publish(p graph.ProcID, s core.State, depth int, dead bool, events, inc int64) {
	nw.mu.Lock()
	snap := Snapshot{
		State:       s,
		Depth:       depth,
		Dead:        dead,
		Events:      events,
		Eats:        nw.eats[p],
		Incarnation: inc,
	}
	nw.table[p] = snap
	nw.mu.Unlock()
	if nw.cfg.OnSnapshot != nil {
		nw.cfg.OnSnapshot(p, snap)
	}
}

// closeOpenSession ends p's eating session (if any) at the current
// instant without counting it as a completed meal.
func (nw *Network) closeOpenSession(p graph.ProcID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if since := nw.openSince[p]; !since.IsZero() {
		nw.sessions = append(nw.sessions, EatSession{Proc: p, Start: since, End: nw.now(), PostGarbage: nw.openPostGarbage[p]})
		nw.openSince[p] = time.Time{}
		nw.openPostGarbage[p] = false
	}
}

// recordEatStart opens an eating session for p. The first session after
// a garbage restart inherits the PostGarbage exemption (see EatSession).
func (nw *Network) recordEatStart(p graph.ProcID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.openSince[p] = nw.now()
	nw.openPostGarbage[p] = nw.garbagePending[p]
	nw.garbagePending[p] = false
}

// recordEatEnd closes p's eating session and counts it. Exiting Eating
// with no session open means the node never legitimately entered — it
// booted or restarted into a garbage Eating state (InitArbitrary,
// RestartArbitrary) — so there is no meal to count and no interval to
// record; fabricating one from a stale eatStart would charge a
// pre-crash incarnation's timestamp to the new one.
func (nw *Network) recordEatEnd(p graph.ProcID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	since := nw.openSince[p]
	if since.IsZero() {
		return
	}
	nw.eats[p]++
	nw.sessions = append(nw.sessions, EatSession{Proc: p, Start: since, End: nw.now(), PostGarbage: nw.openPostGarbage[p]})
	nw.openSince[p] = time.Time{}
	nw.openPostGarbage[p] = false
}

// Table returns a copy of the current snapshot table.
func (nw *Network) Table() []Snapshot {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]Snapshot, len(nw.table))
	copy(out, nw.table)
	return out
}

// Eats returns completed eating sessions per node.
func (nw *Network) Eats() []int64 {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]int64(nil), nw.eats...)
}

// Sessions returns all completed eating sessions.
func (nw *Network) Sessions() []EatSession {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return append([]EatSession(nil), nw.sessions...)
}

// MessagesSent returns the total frames sent (including dropped).
func (nw *Network) MessagesSent() int64 { return nw.sent.Load() }

// MessagesDropped returns frames dropped to full inboxes.
func (nw *Network) MessagesDropped() int64 { return nw.dropped.Load() }

// MessagesLost returns frames dropped by the configured loss rate.
func (nw *Network) MessagesLost() int64 { return nw.lost.Load() }

// OverlappingNeighborSessions returns pairs of completed sessions by
// neighboring nodes whose intervals overlap — safety violations of the
// message-passing system. Adjacency is judged against the union of every
// topology generation the run saw: an edge that existed at any point
// makes the pair neighbors for the check, so membership churn cannot
// hide a violation behind a later splice-out. (No spurious positives:
// two sessions can only overlap while their edge exists, because a
// departing node's edges vanish only once it is dead and a joining
// node's first meal waits for the token its incumbent holds.) Sessions
// flagged PostGarbage are exempt: a garbage-restarted node's first meal
// sits inside the stabilization window, where the paper promises
// convergence, not exclusion.
func (nw *Network) OverlappingNeighborSessions() []string {
	sessions := nw.Sessions()
	ever := nw.everAdjSnapshot()
	var bad []string
	for i := 0; i < len(sessions); i++ {
		for j := i + 1; j < len(sessions); j++ {
			a, b := sessions[i], sessions[j]
			if a.Proc == b.Proc || !ever[graph.EdgeBetween(a.Proc, b.Proc)] {
				continue
			}
			if a.PostGarbage || b.PostGarbage {
				continue
			}
			if a.Start.Before(b.End) && b.Start.Before(a.End) {
				bad = append(bad, fmt.Sprintf("%d@[%v,%v] overlaps %d@[%v,%v]",
					a.Proc, a.Start, a.End, b.Proc, b.Start, b.End))
			}
		}
	}
	return bad
}
