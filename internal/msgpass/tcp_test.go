package msgpass

import (
	"testing"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

func TestTCPEveryoneEats(t *testing.T) {
	g := graph.Ring(5)
	nw, err := NewTCPNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	time.Sleep(500 * time.Millisecond)
	nw.Stop()
	for p, e := range nw.Eats() {
		if e == 0 {
			t.Errorf("node %d never ate over TCP", p)
		}
	}
	if nw.MessagesSent() == 0 {
		t.Error("no frames sent over TCP")
	}
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Errorf("safety violated over TCP: %d overlaps", len(bad))
	}
}

func TestTCPMaliciousCrashLocality(t *testing.T) {
	g := graph.Path(6)
	nw, err := NewTCPNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	time.Sleep(100 * time.Millisecond)
	nw.CrashMaliciously(0, 20)
	time.Sleep(250 * time.Millisecond)
	before := nw.Eats()
	time.Sleep(450 * time.Millisecond)
	nw.Stop()
	after := nw.Eats()
	for p := 3; p < g.N(); p++ {
		if after[p] <= before[p] {
			t.Errorf("node %d (distance >= 3) stopped eating over TCP after the crash", p)
		}
	}
}

func TestTCPStopIsClean(t *testing.T) {
	g := graph.Complete(4)
	nw, err := NewTCPNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	time.Sleep(100 * time.Millisecond)
	nw.Stop()
	nw.Stop() // idempotent, must not hang or panic
}
