package msgpass

import (
	"testing"
	"time"

	"mcdp/internal/graph"
)

func TestForkNetworkEveryoneEats(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(5)})
	nw.Start()
	time.Sleep(300 * time.Millisecond)
	nw.Stop()
	for p, e := range nw.Eats() {
		if e == 0 {
			t.Errorf("philosopher %d never ate under Chandy-Misra", p)
		}
	}
	if nw.MessagesSent() == 0 {
		t.Error("no frames sent")
	}
}

func TestForkNetworkSafety(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Complete(4)})
	nw.Start()
	time.Sleep(300 * time.Millisecond)
	nw.Stop()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Errorf("CM violated safety: %d overlaps", len(bad))
	}
}

func TestForkNetworkCrashStarvesEveryone(t *testing.T) {
	// The baseline's defining weakness, in its strongest form: kill 0
	// before the run starts (the initial placement has the low-ID
	// endpoint holding every incident fork). On a ring, the hungry
	// survivors each pry one dirty fork loose — which arrives CLEAN and
	// is then pinned at its hungry holder until that holder eats, which
	// it never does because the chain terminates at the dead
	// philosopher. The deadlock wraps all the way around and the whole
	// ring starves. One crash, total starvation — against the paper's
	// failure locality 2 on the very same scenario.
	//
	// Message timing may let a survivor sneak in one meal before the
	// clean forks pin (its first eat dirties its forks again, and a
	// second collection needs a neighbor that can never eat to yield a
	// clean fork — impossible), so the assertion is quiescence: once the
	// deadlock closes, nobody EVER eats again, and no philosopher got
	// more than that single transient meal.
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(5)})
	nw.Kill(0)
	nw.Start()
	time.Sleep(400 * time.Millisecond)
	settled := nw.Eats()
	time.Sleep(300 * time.Millisecond)
	nw.Stop()
	final := nw.Eats()
	for p, e := range final {
		if e > 1 {
			t.Errorf("philosopher %d ate %d times; at most one transient meal can precede the CM deadlock", p, e)
		}
		if e != settled[p] {
			t.Errorf("philosopher %d still eating after the deadlock closed (%d -> %d); the CM ring should starve", p, settled[p], e)
		}
	}
}

func TestForkNetworkStartStopDiscipline(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(3)})
	nw.Start()
	nw.Stop()
	nw.Stop() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("second Start must panic")
		}
	}()
	nw.Start()
}

func TestForkNetworkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewForkNetwork without graph must panic")
		}
	}()
	NewForkNetwork(ForkConfig{})
}
