package msgpass

import (
	"testing"
	"time"

	"mcdp/internal/graph"
)

func TestForkNetworkEveryoneEats(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(5)})
	nw.Start()
	time.Sleep(300 * time.Millisecond)
	nw.Stop()
	for p, e := range nw.Eats() {
		if e == 0 {
			t.Errorf("philosopher %d never ate under Chandy-Misra", p)
		}
	}
	if nw.MessagesSent() == 0 {
		t.Error("no frames sent")
	}
}

func TestForkNetworkSafety(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Complete(4)})
	nw.Start()
	time.Sleep(300 * time.Millisecond)
	nw.Stop()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Errorf("CM violated safety: %d overlaps", len(bad))
	}
}

func TestForkNetworkCrashStarvesEveryone(t *testing.T) {
	// The baseline's defining weakness, in its strongest form: kill 0
	// before the run starts (the initial placement has the low-ID
	// endpoint holding every incident fork). On a ring, the hungry
	// survivors each pry one dirty fork loose — which arrives CLEAN and
	// is then pinned at its hungry holder until that holder eats, which
	// it never does because the chain terminates at the dead
	// philosopher. The deadlock wraps all the way around: NOBODY ever
	// eats. One crash, total starvation — against the paper's failure
	// locality 2 on the very same scenario.
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(5)})
	nw.Kill(0)
	nw.Start()
	time.Sleep(400 * time.Millisecond)
	nw.Stop()
	for p, e := range nw.Eats() {
		if e != 0 {
			t.Errorf("philosopher %d ate %d times; the CM ring should starve entirely", p, e)
		}
	}
}

func TestForkNetworkStartStopDiscipline(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(3)})
	nw.Start()
	nw.Stop()
	nw.Stop() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("second Start must panic")
		}
	}()
	nw.Start()
}

func TestForkNetworkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewForkNetwork without graph must panic")
		}
	}()
	NewForkNetwork(ForkConfig{})
}
