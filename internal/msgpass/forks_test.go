package msgpass

import (
	"testing"
	"time"

	"mcdp/internal/graph"
)

func TestForkNetworkEveryoneEats(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(5)})
	nw.Start()
	time.Sleep(300 * time.Millisecond)
	nw.Stop()
	for p, e := range nw.Eats() {
		if e == 0 {
			t.Errorf("philosopher %d never ate under Chandy-Misra", p)
		}
	}
	if nw.MessagesSent() == 0 {
		t.Error("no frames sent")
	}
}

func TestForkNetworkSafety(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Complete(4)})
	nw.Start()
	time.Sleep(300 * time.Millisecond)
	nw.Stop()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Errorf("CM violated safety: %d overlaps", len(bad))
	}
}

// The crash-starvation property of the baseline (one early kill
// deadlocks and starves the whole CM ring) is exact-checked on the
// deterministic harness: see detsim.TestForkCrashStarvesRing, which
// replaced the sleep-window test that lived here — quiescence there is
// decided, not sampled.

func TestForkNetworkStartStopDiscipline(t *testing.T) {
	nw := NewForkNetwork(ForkConfig{Graph: graph.Ring(3)})
	nw.Start()
	nw.Stop()
	nw.Stop() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("second Start must panic")
		}
	}()
	nw.Start()
}

func TestForkNetworkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewForkNetwork without graph must panic")
		}
	}()
	NewForkNetwork(ForkConfig{})
}
