// Package msgpass realizes the paper's Section 4: the transformation of
// the shared-memory algorithm to an asynchronous message-passing system,
// here one goroutine per philosopher connected by reliable channels.
//
// The synchronization substrate is the one the paper points at — a
// stabilizing handshake derived from Dijkstra's K-state token circulation
// — specialized to each edge's two endpoints:
//
//   - every edge {low, high} carries one logical token. The low endpoint
//     holds it iff its counter equals its cached copy of the peer's
//     counter; the high endpoint holds it iff its counter differs from
//     its cached copy of the low counter. Passing the token means
//     advancing one's own counter (low increments mod K, high adopts),
//     which is exactly Dijkstra's two-machine K-state protocol, so from
//     arbitrary counter corruption the edge stabilizes to a single
//     alternating token;
//   - nodes gossip their current (counter, state, depth, priority belief)
//     on every edge — eagerly after each local change and periodically on
//     a tick — so message loss or buffer overflow only delays, never
//     wedges, the protocol; receiving a duplicate is idempotent;
//   - the token is the write capability for the shared priority
//     variable: only the current holder mutates its belief, and a
//     receiver adopts the belief in a message iff the counters in that
//     message prove the sender held the token when it sent. Yields
//     requested while not holding (the exit action) are buffered and
//     applied on next possession;
//   - the token is also the atomicity refinement for eating: the engine
//     lets the enter action fire only while the node holds every
//     incident token, and an eating node retains all tokens until it
//     exits. Starting from a legitimate state token possession is
//     exclusive, which makes neighbor eating exclusion exact rather
//     than probabilistic; from corrupted counters it is re-established
//     by the K-state stabilization, giving the eventual safety a
//     stabilizing solution promises.
//
// The guarded-command algorithm itself is not rewritten: each node
// evaluates the very same core.Algorithm (the paper's Figure 1) against a
// view assembled from its own variables and its freshest per-edge caches.
package msgpass

import (
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
)

// kStates is the K of the per-edge K-state protocol. Any K >= 2 works for
// two machines; a larger K shrinks the probability that corrupted
// counters mimic a legal configuration for long.
const kStates = 8

// message is one gossip/token frame on an edge.
type message struct {
	// edgeIdx identifies the edge in the graph's edge order.
	edgeIdx int
	// from is the sending endpoint.
	from graph.ProcID
	// counter is the sender's K-state counter for this edge.
	counter uint8
	// state and depth are the sender's own variables.
	state core.State
	depth int
	// priority is the sender's belief of the edge's priority holder.
	priority graph.ProcID
}

// EatSession records one eating interval for safety checking.
type EatSession struct {
	// Proc is the eater.
	Proc graph.ProcID
	// Start and End bound the interval (monotonic clock).
	Start, End time.Time
	// PostGarbage marks the node's first session after a garbage
	// restart. Arbitrary boot state can forge token parity for exactly
	// one entry before the neighbors' frames re-cohere the edges, so
	// this session may overlap a neighbor's — a stabilization transient
	// the paper's safety property does not cover, and the overlap
	// oracle exempts it.
	PostGarbage bool
}

// Config tunes a Network.
type Config struct {
	// Graph is the topology. Required.
	Graph *graph.Graph
	// Algorithm is the diners algorithm each node runs. Required.
	Algorithm core.Algorithm
	// DiameterOverride, if positive, replaces the true diameter as the
	// constant D.
	DiameterOverride int
	// Hungry fixes needs():p per node; nil means always hungry.
	Hungry []bool
	// EatEvents is how many node events an eating session spans before
	// exit becomes eligible (>= 1; default 2).
	EatEvents int
	// TickEvery is the gossip period — all frames are paced by it
	// (default 1ms).
	TickEvery time.Duration
	// InboxSize is each node's channel capacity (default 256).
	InboxSize int
	// LossRate drops each frame independently with this probability
	// (0..1). The protocol is built to tolerate loss: every frame is a
	// full-state gossip retransmitted each tick, so loss only delays.
	LossRate float64
	// Seed drives the arbitrary-state initializer, malicious garbage,
	// and loss decisions.
	Seed int64
	// Faults, when non-nil, is consulted on every frame delivery to
	// inject transport faults (drop, duplicate, corrupt, delay). It
	// composes with LossRate and partitions, which apply first. See
	// internal/chaos for the seeded, replayable implementation.
	Faults FaultInjector
	// OnSnapshot, if non-nil, is called after every snapshot publish with
	// the publishing node's fresh snapshot. It runs on node goroutines
	// outside the network's locks and must be fast and non-blocking —
	// typically a non-blocking nudge on a channel. Hunger set through
	// SetNeeds plus this hook is what lets an external controller (the
	// lock service in internal/lockservice) drive and observe the system
	// without touching node-owned state.
	OnSnapshot func(p graph.ProcID, s Snapshot)
}
