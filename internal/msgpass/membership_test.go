package msgpass

import (
	"testing"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
)

// stepper is a minimal deterministic driver for membership tests: each
// round ticks every current process in ID order, then delivers all
// captured frames FIFO.
type stepper struct {
	d       *Driven
	pending []Frame
}

func newStepper(cfg Config) *stepper {
	vnow := time.Unix(0, 0)
	d := NewDriven(cfg, func() time.Time { return vnow })
	s := &stepper{d: d}
	s.pending = append(s.pending, d.Boot()...)
	return s
}

func (s *stepper) round() {
	n := s.d.Network().N()
	for p := 0; p < n; p++ {
		s.pending = append(s.pending, s.d.Tick(graph.ProcID(p))...)
	}
	frames := s.pending
	s.pending = nil
	for _, f := range frames {
		s.pending = append(s.pending, s.d.Deliver(f)...)
	}
}

// runUntil runs rounds until pred holds, failing after limit rounds.
func (s *stepper) runUntil(t *testing.T, limit int, what string, pred func() bool) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if pred() {
			return
		}
		s.round()
	}
	t.Fatalf("no progress after %d rounds: %s", limit, what)
}

// TestAddProcessJoinCannotForgeToken pins the tentpole safety argument:
// a process spliced in next to an eating incumbent boots humble
// (unheard, holding nothing) while the incumbent side owns the new
// edge's token, so the joiner cannot enter until the incumbent's meal
// ends and the token is granted.
func TestAddProcessJoinCannotForgeToken(t *testing.T) {
	s := newStepper(Config{Graph: graph.Path(2), Algorithm: core.NewMCDP(), EatEvents: 50})
	nw := s.d.Network()
	rd := s.d.Reader()

	s.runUntil(t, 200, "node 0 never ate", func() bool { return rd.State(0) == core.Eating })
	pid, err := nw.AddProcess([]graph.ProcID{0})
	if err != nil {
		t.Fatalf("AddProcess: %v", err)
	}
	if pid != 2 {
		t.Fatalf("AddProcess assigned %d, want dense next ID 2", pid)
	}
	if g := nw.Graph(); g.N() != 3 || !g.HasEdge(0, 2) {
		t.Fatalf("graph after join: %v", g)
	}
	// Two ticks let the eating incumbent splice the new edge in and
	// gossip on it (its 50-event dwell barely notices); then freeze it
	// mid-meal by neither ticking it nor delivering to it (dropped
	// frames are legal loss). The joiner hears the incumbent, syncs
	// humble, and must starve politely.
	s.pending = append(s.pending, s.d.Tick(0)...)
	s.pending = append(s.pending, s.d.Tick(0)...)
	for i := 0; i < 40; i++ {
		s.pending = append(s.pending, s.d.Tick(1)...)
		s.pending = append(s.pending, s.d.Tick(2)...)
		frames := s.pending
		s.pending = nil
		for _, f := range frames {
			if f.To == 0 {
				continue
			}
			s.pending = append(s.pending, s.d.Deliver(f)...)
		}
		if rd.State(0) != core.Eating {
			t.Fatal("incumbent stopped eating while frozen")
		}
		if rd.State(2) == core.Eating {
			t.Fatalf("joiner forged a token and ate over the incumbent's meal (round %d)", i)
		}
	}
	// Resume normal scheduling: the meal ends and the joiner eats.
	s.runUntil(t, 400, "joiner never ate after the incumbent's meal", func() bool {
		return nw.Snapshot(2).Eats > 0
	})
	s.d.Finish()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Fatalf("overlapping sessions after join: %v", bad)
	}
}

// TestRemoveProcessFreesDisplacedWaiter: a hungry node blocked on a
// token its neighbor holds must eat after that neighbor leaves — the
// splice-out drops the shared edge, so the waiter stops waiting on a
// vertex that no longer exists.
func TestRemoveProcessFreesDisplacedWaiter(t *testing.T) {
	s := newStepper(Config{Graph: graph.Path(2), Algorithm: core.NewMCDP(), EatEvents: 3})
	nw := s.d.Network()
	rd := s.d.Reader()

	s.runUntil(t, 200, "no meal with a hungry waiter", func() bool {
		return rd.State(0) == core.Eating && rd.State(1) == core.Hungry ||
			rd.State(1) == core.Eating && rd.State(0) == core.Hungry
	})
	eater := graph.ProcID(0)
	waiter := graph.ProcID(1)
	if rd.State(1) == core.Eating {
		eater, waiter = 1, 0
	}
	before := nw.Snapshot(waiter).Eats
	if err := nw.RemoveProcess(eater); err != nil {
		t.Fatalf("RemoveProcess: %v", err)
	}
	s.runUntil(t, 400, "displaced waiter never ate", func() bool {
		return nw.Snapshot(waiter).Eats > before
	})
	if !nw.Departed(eater) {
		t.Fatal("leaver not marked departed")
	}
	if !nw.Snapshot(eater).Dead {
		t.Fatal("leaver still alive")
	}
	if g := nw.Graph(); g.Degree(eater) != 0 {
		t.Fatalf("leaver still has edges: %v", g)
	}
	s.d.Finish()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Fatalf("overlapping sessions after leave: %v", bad)
	}
}

// TestDepartedNodeCannotBeRevivedExceptByJoin: Restart on a departed
// process is a no-op; JoinProcess is the only readmission path, and it
// revives the node through the humble clean-reboot.
func TestDepartedNodeCannotBeRevivedExceptByJoin(t *testing.T) {
	s := newStepper(Config{Graph: graph.Ring(4), Algorithm: core.NewMCDP(), EatEvents: 2})
	nw := s.d.Network()

	s.runUntil(t, 400, "ring never converged to meals", func() bool {
		for p := 0; p < 4; p++ {
			if nw.Snapshot(graph.ProcID(p)).Eats == 0 {
				return false
			}
		}
		return true
	})
	if err := nw.RemoveProcess(2); err != nil {
		t.Fatalf("RemoveProcess: %v", err)
	}
	s.round()
	nw.Restart(2, RestartClean) // must be ignored: 2 has departed
	for i := 0; i < 20; i++ {
		s.round()
	}
	if !nw.Snapshot(2).Dead {
		t.Fatal("Restart revived a departed process")
	}
	if err := nw.JoinProcess(2, []graph.ProcID{1, 3}); err != nil {
		t.Fatalf("JoinProcess: %v", err)
	}
	rejoined := nw.Snapshot(2).Eats
	s.runUntil(t, 600, "rejoined node never ate", func() bool {
		return nw.Snapshot(2).Eats > rejoined && !nw.Snapshot(2).Dead
	})
	if g := nw.Graph(); !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatalf("rejoin did not restore edges: %v", g)
	}
	s.d.Finish()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Fatalf("overlapping sessions across leave/rejoin: %v", bad)
	}
}

// TestMembershipValidation covers the error surface.
func TestMembershipValidation(t *testing.T) {
	s := newStepper(Config{Graph: graph.Path(3), Algorithm: core.NewMCDP()})
	nw := s.d.Network()

	if _, err := nw.AddProcess([]graph.ProcID{0, 0}); err == nil {
		t.Error("duplicate neighbors accepted")
	}
	if _, err := nw.AddProcess([]graph.ProcID{7}); err == nil {
		t.Error("unknown neighbor accepted")
	}
	if err := nw.JoinProcess(1, []graph.ProcID{0}); err == nil {
		t.Error("JoinProcess accepted a non-departed process")
	}
	if err := nw.RemoveProcess(9); err == nil {
		t.Error("RemoveProcess accepted an unknown process")
	}
	if err := nw.RemoveProcess(2); err != nil {
		t.Fatalf("RemoveProcess: %v", err)
	}
	if err := nw.RemoveProcess(2); err == nil {
		t.Error("double RemoveProcess accepted")
	}
	if _, err := nw.AddProcess([]graph.ProcID{2}); err == nil {
		t.Error("AddProcess accepted a departed neighbor")
	}
	if err := nw.JoinProcess(2, []graph.ProcID{2}); err == nil {
		t.Error("self-neighbor accepted")
	}
	if err := nw.JoinProcess(2, []graph.ProcID{1}); err != nil {
		t.Errorf("rejoin rejected: %v", err)
	}
}

// TestMembershipDisabledOnTCP: the TCP transport pins one socket per
// static edge, so membership must refuse.
func TestMembershipDisabledOnTCP(t *testing.T) {
	nw, err := NewTCPNetwork(Config{Graph: graph.Path(2), Algorithm: core.NewMCDP()})
	if err != nil {
		t.Fatalf("NewTCPNetwork: %v", err)
	}
	nw.Start()
	defer nw.Stop()
	if _, err := nw.AddProcess([]graph.ProcID{0}); err != ErrExternalTransport {
		t.Errorf("AddProcess on TCP: %v, want ErrExternalTransport", err)
	}
	if err := nw.RemoveProcess(1); err != ErrExternalTransport {
		t.Errorf("RemoveProcess on TCP: %v, want ErrExternalTransport", err)
	}
}

// TestMembershipUnderGoroutineRuntime exercises the concurrent path:
// live joins and leaves against the real goroutine scheduler, with the
// interval oracle as the judge. Run with -race in CI.
func TestMembershipUnderGoroutineRuntime(t *testing.T) {
	nw := NewNetwork(Config{
		Graph:     graph.Ring(5),
		Algorithm: core.NewMCDP(),
		TickEvery: 200 * time.Microsecond,
		EatEvents: 2,
		Seed:      11,
	})
	nw.Start()
	defer nw.Stop()

	waitEats := func(p graph.ProcID, n int64, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if nw.Snapshot(p).Eats >= n {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timeout: %s", what)
	}

	waitEats(0, 1, "node 0 never ate")
	pid, err := nw.AddProcess([]graph.ProcID{0, 2})
	if err != nil {
		t.Fatalf("AddProcess: %v", err)
	}
	waitEats(pid, 1, "live-joined node never ate")
	if err := nw.RemoveProcess(1); err != nil {
		t.Fatalf("RemoveProcess: %v", err)
	}
	base := nw.Snapshot(0).Eats
	waitEats(0, base+2, "neighbor of leaver stopped eating")
	if err := nw.JoinProcess(1, []graph.ProcID{0, 2}); err != nil {
		t.Fatalf("JoinProcess: %v", err)
	}
	waitEats(1, nw.Snapshot(1).Eats+1, "rejoined node never ate")
	nw.Stop()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Fatalf("overlapping sessions under churn: %v", bad)
	}
	if nw.Joins() != 2 || nw.Leaves() != 1 {
		t.Fatalf("membership counters: joins=%d leaves=%d", nw.Joins(), nw.Leaves())
	}
}
