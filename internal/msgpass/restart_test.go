package msgpass

import (
	"sync/atomic"
	"testing"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

// waitUntil polls cond every few milliseconds until it holds or the
// deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRestartCleanEatsAgain: a killed node revived clean rejoins the
// protocol and completes meals in its new incarnation.
func TestRestartCleanEatsAgain(t *testing.T) {
	g := graph.Ring(5)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             11,
	})
	nw.Start()
	defer nw.Stop()
	const victim = graph.ProcID(2)
	waitUntil(t, 5*time.Second, func() bool { return nw.Eats()[victim] > 0 }, "first meal")
	nw.Kill(victim)
	time.Sleep(50 * time.Millisecond)
	atKill := nw.Eats()[victim]
	nw.Restart(victim, RestartClean)
	waitUntil(t, 5*time.Second, func() bool { return nw.Eats()[victim] > atKill },
		"revived node to eat again")
	if got := nw.Table()[victim]; got.Incarnation != 1 {
		t.Fatalf("incarnation = %d, want 1", got.Incarnation)
	}
	if nw.Restarts() != 1 {
		t.Fatalf("Restarts() = %d, want 1", nw.Restarts())
	}
}

// TestRestartGarbageConverges: a node revived with arbitrary state is
// absorbed by stabilization — it eats again and the run stays safe.
func TestRestartGarbageConverges(t *testing.T) {
	g := graph.Grid(3, 3)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             12,
	})
	nw.Start()
	const victim = graph.ProcID(4) // center: every edge touched
	waitUntil(t, 5*time.Second, func() bool { return nw.Eats()[victim] > 0 }, "first meal")
	nw.CrashMaliciously(victim, 15)
	time.Sleep(60 * time.Millisecond)
	atKill := nw.Eats()[victim]
	nw.Restart(victim, RestartArbitrary)
	waitUntil(t, 10*time.Second, func() bool { return nw.Eats()[victim] > atKill },
		"garbage-revived node to eat again")
	nw.Stop()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Fatalf("garbage restart broke safety: %v", bad)
	}
}

// TestRestartPendingCollapses: multiple Restart calls before the node
// polls collapse to the latest mode, and restarting a live node is a
// reboot, not an error.
func TestRestartPendingCollapses(t *testing.T) {
	g := graph.Ring(4)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             13,
	})
	nw.Start()
	defer nw.Stop()
	waitUntil(t, 5*time.Second, func() bool { return nw.Eats()[0] > 0 }, "first meal")
	nw.Restart(0, RestartArbitrary)
	nw.Restart(0, RestartClean) // live reboot on top of a pending one
	waitUntil(t, 5*time.Second, func() bool { return nw.Table()[0].Incarnation >= 1 },
		"incarnation to advance")
	if nw.Restarts() != 2 {
		t.Fatalf("Restarts() = %d, want 2", nw.Restarts())
	}
}

// TestTCPRestartReconnectsEdges: restarting a node over the TCP
// transport severs its sockets; the surviving endpoints redial, the
// edges come back, and the revived node eats again.
func TestTCPRestartReconnectsEdges(t *testing.T) {
	g := graph.Ring(5)
	nw, err := NewTCPNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             14,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	const victim = graph.ProcID(1)
	waitUntil(t, 5*time.Second, func() bool { return nw.Eats()[victim] > 0 }, "first meal")
	nw.Kill(victim)
	time.Sleep(50 * time.Millisecond)
	atKill := nw.Eats()[victim]
	nw.Restart(victim, RestartArbitrary)
	waitUntil(t, 10*time.Second, func() bool { return nw.Eats()[victim] > atKill },
		"revived node to eat again over TCP")
	waitUntil(t, 5*time.Second, func() bool { return nw.Reconnects() >= 2 },
		"both incident edges to reconnect")
	nw.Stop()
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Fatalf("TCP restart broke safety: %v", bad)
	}
}

// TestGoroutineFaultInjection: the injector hook runs on the live
// goroutine path — faults land at roughly configured rates and the
// system keeps eating through them.
func TestGoroutineFaultInjection(t *testing.T) {
	g := graph.Ring(5)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             15,
		Faults:           &cycleFaults{},
	})
	nw.Start()
	waitUntil(t, 10*time.Second, func() bool {
		for _, e := range nw.Eats() {
			if e == 0 {
				return false
			}
		}
		return true
	}, "every node to eat under injected faults")
	nw.Stop()
	dropped, duplicated, _, delayed := nw.FaultsInjected()
	if dropped == 0 || duplicated == 0 || delayed == 0 {
		t.Fatalf("injector idle: dropped=%d duplicated=%d delayed=%d", dropped, duplicated, delayed)
	}
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Fatalf("faults broke safety: %v", bad)
	}
}

// cycleFaults cycles drop, duplicate, and delay verdicts over a shared
// counter (so every channel sees every fault class) without importing
// internal/chaos — msgpass must not depend on its consumers.
type cycleFaults struct{ ctr atomic.Int64 }

func (c *cycleFaults) Decide(from, to graph.ProcID, edgeIdx int) FaultDecision {
	switch c.ctr.Add(1) % 10 {
	case 0:
		return FaultDecision{Drop: true}
	case 1:
		return FaultDecision{Duplicates: 1}
	case 2:
		return FaultDecision{DelayTicks: 2}
	default:
		return FaultDecision{}
	}
}
