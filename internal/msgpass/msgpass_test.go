package msgpass

import (
	"sync/atomic"
	"testing"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

// runFor starts the network, lets it run for d, and stops it.
func runFor(nw *Network, d time.Duration) {
	nw.Start()
	time.Sleep(d)
	nw.Stop()
}

func TestEdgeStateTokenProtocol(t *testing.T) {
	low := edgeState{low: true, heard: true}
	if !low.holds() {
		t.Fatal("low endpoint with equal counters must hold")
	}
	low.pass()
	if low.holds() {
		t.Fatal("after passing, low must not hold")
	}
	high := edgeState{low: false, counter: 1, peerCounter: 1, heard: true}
	if high.holds() {
		t.Fatal("high endpoint with equal counters must not hold... counters equal means low holds")
	}
	high.peerCounter = 0
	if !high.holds() {
		t.Fatal("high endpoint with differing counters must hold")
	}
	high.pass()
	if high.holds() {
		t.Fatal("after passing, high must not hold")
	}
}

func TestSenderHeldJudgment(t *testing.T) {
	// We are the low endpoint with counter 3. The high peer held the
	// token iff its counter differed from ours at send time.
	low := edgeState{low: true, counter: 3}
	if low.senderHeld(3) {
		t.Error("high sender with equal counter did not hold")
	}
	if !low.senderHeld(4) {
		t.Error("high sender with differing counter held")
	}
	// We are the high endpoint with counter 5; the low peer held iff its
	// counter equals ours.
	high := edgeState{low: false, counter: 5}
	if !high.senderHeld(5) {
		t.Error("low sender with equal counter held")
	}
	if high.senderHeld(6) {
		t.Error("low sender with differing counter did not hold")
	}
}

func TestTokenExclusivityInvariant(t *testing.T) {
	// Simulate a full exchange: at most one endpoint holds at any point,
	// and between pass and delivery, neither does.
	low := edgeState{low: true, heard: true}
	high := edgeState{low: false, heard: true}
	deliverToHigh := func() { high.peerCounter = low.counter }
	deliverToLow := func() { low.peerCounter = high.counter }
	for i := 0; i < 3*kStates; i++ {
		if low.holds() && high.holds() {
			t.Fatal("both endpoints hold")
		}
		switch {
		case low.holds():
			low.pass()
			if low.holds() {
				t.Fatal("low still holds after pass")
			}
			deliverToHigh()
			if !high.holds() {
				t.Fatal("high did not receive the token")
			}
		case high.holds():
			high.pass()
			deliverToLow()
			if !low.holds() {
				t.Fatal("low did not receive the token")
			}
		default:
			t.Fatal("token lost")
		}
	}
}

// TestCleanRestartResyncsFromFirstFrame covers the humble-reboot rule:
// after a clean restart an edge is unheard — the node holds nothing on
// it regardless of counter parity — and the first frame from the peer
// syncs the node to the non-holding counter, so the token regenerates
// at the live peer instead of being forged by the zeroed boot state.
func TestCleanRestartResyncsFromFirstFrame(t *testing.T) {
	nw := NewNetwork(Config{Graph: graph.Path(2), Algorithm: core.NewMCDP()})
	n0 := nw.procs.Load().nodes[0] // low endpoint of edge 0-1
	n0.applyRestart(RestartClean)
	e := &n0.edges[0]
	if e.heard {
		t.Fatal("clean restart must mark edges unheard")
	}
	if e.holds() {
		t.Fatal("unheard edge held despite equal zeroed counters")
	}
	n0.handle(message{edgeIdx: e.idx, from: 1, counter: 5, state: core.Hungry, depth: 1, priority: 1})
	if !e.heard {
		t.Fatal("first frame must mark the edge heard")
	}
	if e.peerCounter != 5 || e.counter != 6 {
		t.Fatalf("sync adopted (counter=%d, peerCounter=%d), want the non-holding pair (6, 5)", e.counter, e.peerCounter)
	}
	if e.holds() {
		t.Fatal("low endpoint holds after syncing to the non-holding counter")
	}
	if e.peerState != core.Hungry || e.peerDepth != 1 || e.priority != 1 {
		t.Fatalf("sync must adopt the peer's frame wholesale: %+v", *e)
	}

	// A garbage restart keeps its edges heard: arbitrary state owes no
	// humility — stabilization handles it, and the exclusion oracles
	// grant its first session the post-garbage exemption instead.
	n0.applyRestart(RestartArbitrary)
	if !e.heard {
		t.Fatal("garbage restart must leave edges heard")
	}
}

func TestKStateStabilizesFromGarbage(t *testing.T) {
	// From any counter pair, after each endpoint hears the other once,
	// exactly one endpoint holds.
	for c0 := uint8(0); c0 < kStates; c0++ {
		for c1 := uint8(0); c1 < kStates; c1++ {
			low := edgeState{low: true, counter: c0, peerCounter: 99, heard: true}
			high := edgeState{low: false, counter: c1, peerCounter: 99, heard: true}
			low.peerCounter = high.counter
			high.peerCounter = low.counter
			l, h := low.holds(), high.holds()
			if l == h {
				t.Fatalf("counters (%d,%d): low=%v high=%v, want exactly one holder", c0, c1, l, h)
			}
		}
	}
}

func TestNetworkValidation(t *testing.T) {
	if r := func() (r bool) {
		defer func() { r = recover() != nil }()
		NewNetwork(Config{Algorithm: core.NewMCDP()})
		return false
	}(); !r {
		t.Error("NewNetwork without graph must panic")
	}
	if r := func() (r bool) {
		defer func() { r = recover() != nil }()
		NewNetwork(Config{Graph: graph.Ring(3)})
		return false
	}(); !r {
		t.Error("NewNetwork without algorithm must panic")
	}
}

func TestEveryoneEatsOverMessagePassing(t *testing.T) {
	g := graph.Ring(5)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             1,
	})
	runFor(nw, 400*time.Millisecond)
	for p, e := range nw.Eats() {
		if e < 2 {
			t.Errorf("node %d ate %d times over message passing, want >= 2", p, e)
		}
	}
	if nw.MessagesSent() == 0 {
		t.Error("no messages sent")
	}
}

func TestSafetyOverMessagePassing(t *testing.T) {
	g := graph.Complete(4) // max contention
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             2,
	})
	runFor(nw, 400*time.Millisecond)
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Errorf("neighbor eating sessions overlapped:\n%v", bad)
	}
	total := int64(0)
	for _, e := range nw.Eats() {
		total += e
	}
	if total == 0 {
		t.Error("nobody ate on the complete graph")
	}
}

// The benign- and malicious-crash locality tests that lived here were
// ported to the deterministic harness, where the crash round is exact
// and the locality oracle runs per step instead of across sleep
// windows: see detsim.TestBenignCrashLocalityDeterministic and
// detsim.TestMaliciousCrashLocalityDeterministic.

func TestStabilizationFromGarbageOverMessagePassing(t *testing.T) {
	g := graph.Ring(4)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             5,
	})
	nw.InitArbitrary(99)
	nw.Start()
	// Let it converge, then measure from a clean baseline.
	time.Sleep(200 * time.Millisecond)
	before := nw.Eats()
	sessionsBefore := len(nw.Sessions())
	time.Sleep(400 * time.Millisecond)
	nw.Stop()
	after := nw.Eats()
	for p := range after {
		if after[p] <= before[p] {
			t.Errorf("node %d not eating after stabilization window", p)
		}
	}
	// Safety after convergence: check only sessions that started after
	// the stabilization window.
	sessions := nw.Sessions()[sessionsBefore:]
	for i := 0; i < len(sessions); i++ {
		for j := i + 1; j < len(sessions); j++ {
			a, b := sessions[i], sessions[j]
			if a.Proc == b.Proc || !g.HasEdge(a.Proc, b.Proc) {
				continue
			}
			if a.Start.Before(b.End) && b.Start.Before(a.End) {
				t.Errorf("post-convergence overlap: %d and %d", a.Proc, b.Proc)
			}
		}
	}
}

func TestLossToleranceOfTheGossipLayer(t *testing.T) {
	// Drop 30% of all frames: the system must still keep everyone
	// eating (slower, but alive) and must never violate safety — every
	// frame is a full-state gossip, so loss only delays.
	g := graph.Ring(5)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		LossRate:         0.3,
		Seed:             6,
	})
	runFor(nw, 600*time.Millisecond)
	if nw.MessagesLost() == 0 {
		t.Fatal("the loss injector dropped nothing")
	}
	for p, e := range nw.Eats() {
		if e == 0 {
			t.Errorf("node %d never ate under 30%% frame loss", p)
		}
	}
	if bad := nw.OverlappingNeighborSessions(); len(bad) != 0 {
		t.Errorf("safety violated under loss:\n%v", bad)
	}
	lossFrac := float64(nw.MessagesLost()) / float64(nw.MessagesSent())
	if lossFrac < 0.2 || lossFrac > 0.4 {
		t.Errorf("empirical loss fraction %.2f, want ~0.3", lossFrac)
	}
}

func TestMultipleSimultaneousCrashes(t *testing.T) {
	// Two malicious crashes at once on ring(10): the union-of-balls
	// containment (experiment E12) over real goroutines. Nodes at
	// distance >= 3 from BOTH crashes (victims 0 and 5 -> nodes 3 and 8
	// alone... distances: node 3 is 3 from 0 and 2 from 5; on ring(10)
	// distance(3,5)=2. Pick victims 0 and 5: far nodes need min dist >=
	// 3 from both: node 2 (2,3)? no. Use victims 0 and 4: node 7 is
	// dist 3 from 0 (via 8,9) and 3 from 4. Node 8: 2 from 0. So check
	// node 7 only.
	g := graph.Ring(10)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             9,
	})
	nw.Start()
	time.Sleep(80 * time.Millisecond)
	nw.CrashMaliciously(0, 20)
	nw.CrashMaliciously(4, 20)
	time.Sleep(250 * time.Millisecond)
	before := nw.Eats()
	time.Sleep(450 * time.Millisecond)
	nw.Stop()
	after := nw.Eats()
	if after[7] <= before[7] {
		t.Error("node 7 (distance >= 3 from both crashes) stopped eating")
	}
	table := nw.Table()
	if !table[0].Dead || !table[4].Dead {
		t.Error("victims did not halt")
	}
}

func TestPartitionHeals(t *testing.T) {
	// Isolate a node mid-run (all its frames lost both ways), heal, and
	// verify the system resynchronizes: everyone — including the
	// formerly partitioned node — eats afterwards, and sessions begun
	// after healing never overlap.
	g := graph.Ring(5)
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             8,
	})
	nw.Start()
	time.Sleep(100 * time.Millisecond)
	nw.SetPartitioned(2, true)
	time.Sleep(200 * time.Millisecond)
	nw.SetPartitioned(2, false)
	time.Sleep(100 * time.Millisecond) // resync window
	healedAt := len(nw.Sessions())
	before := nw.Eats()
	time.Sleep(400 * time.Millisecond)
	nw.Stop()
	after := nw.Eats()
	for p := range after {
		if after[p] <= before[p] {
			t.Errorf("node %d not eating after the partition healed", p)
		}
	}
	sessions := nw.Sessions()[healedAt:]
	for i := 0; i < len(sessions); i++ {
		for j := i + 1; j < len(sessions); j++ {
			a, b := sessions[i], sessions[j]
			if a.Proc == b.Proc || !g.HasEdge(a.Proc, b.Proc) {
				continue
			}
			if a.Start.Before(b.End) && b.Start.Before(a.End) {
				t.Errorf("post-heal overlap between %d and %d", a.Proc, b.Proc)
			}
		}
	}
	if nw.MessagesLost() == 0 {
		t.Error("the partition lost no frames (not exercised)")
	}
}

func TestDynamicNeedsDrivesEating(t *testing.T) {
	// Start with nobody hungry: no one may ever eat. Then flip one node's
	// needs on via the thread-safe control surface and it must start
	// eating; flip it off and its meal count must settle.
	g := graph.Ring(4)
	hungry := make([]bool, g.N())
	nw := NewNetwork(Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Hungry:           hungry,
		Seed:             7,
	})
	nw.Start()
	defer nw.Stop()
	time.Sleep(100 * time.Millisecond)
	for p, e := range nw.Eats() {
		if e != 0 {
			t.Fatalf("node %d ate %d times with needs() false everywhere", p, e)
		}
	}
	nw.SetNeeds(2, true)
	if !nw.Needs(2) {
		t.Fatal("SetNeeds(2, true) not visible through Needs")
	}
	deadline := time.Now().Add(2 * time.Second)
	for nw.Eats()[2] < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if nw.Eats()[2] < 2 {
		t.Fatalf("node 2 ate %d times after becoming needy, want >= 2", nw.Eats()[2])
	}
	nw.SetNeeds(2, false)
	time.Sleep(50 * time.Millisecond) // let any in-flight meal finish
	settled := nw.Eats()[2]
	time.Sleep(150 * time.Millisecond)
	if got := nw.Eats()[2]; got != settled {
		t.Errorf("node 2 kept eating after needs went false: %d -> %d", settled, got)
	}
	for _, p := range []int{0, 1, 3} {
		if e := nw.Eats()[p]; e != 0 {
			t.Errorf("node %d ate %d times though never needy", p, e)
		}
	}
}

func TestSnapshotHookFires(t *testing.T) {
	g := graph.Ring(3)
	var hooks atomic.Int64
	nw := NewNetwork(Config{
		Graph:     g,
		Algorithm: core.NewMCDP(),
		Seed:      1,
		OnSnapshot: func(p graph.ProcID, s Snapshot) {
			hooks.Add(1)
		},
	})
	runFor(nw, 100*time.Millisecond)
	if hooks.Load() == 0 {
		t.Error("OnSnapshot never fired")
	}
	if got := nw.Snapshot(0); got.Events == 0 {
		t.Error("Snapshot(0) shows no processed events")
	}
	if nw.Graph() != g {
		t.Error("Graph() does not return the configured topology")
	}
}

func TestStopIdempotentAndStartTwicePanics(t *testing.T) {
	nw := NewNetwork(Config{Graph: graph.Ring(3), Algorithm: core.NewMCDP()})
	nw.Start()
	nw.Stop()
	nw.Stop() // must not panic or deadlock
	defer func() {
		if recover() == nil {
			t.Error("second Start must panic")
		}
	}()
	nw.Start()
}

func TestInitArbitraryAfterStartPanics(t *testing.T) {
	nw := NewNetwork(Config{Graph: graph.Ring(3), Algorithm: core.NewMCDP()})
	nw.Start()
	defer nw.Stop()
	defer func() {
		if recover() == nil {
			t.Error("InitArbitrary after Start must panic")
		}
	}()
	nw.InitArbitrary(1)
}
