package msgpass

import (
	"testing"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

// drivenConfig is a minimal driven-mode config over g.
func drivenConfig(g *graph.Graph) Config {
	return Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             1,
	}
}

func TestDrivenStartPanics(t *testing.T) {
	d := NewDriven(drivenConfig(graph.Ring(3)), nil)
	defer func() {
		if recover() == nil {
			t.Error("Start on a driven network must panic")
		}
	}()
	d.Network().Start()
}

func TestForkDrivenStartPanics(t *testing.T) {
	d := NewForkDriven(ForkConfig{Graph: graph.Ring(3)}, nil)
	defer func() {
		if recover() == nil {
			t.Error("Start on a driven ForkNetwork must panic")
		}
	}()
	d.Network().Start()
}

// TestDrivenBootEmitsFullGossip: the boot step is each node's initial
// gossip — exactly one frame per directed edge.
func TestDrivenBootEmitsFullGossip(t *testing.T) {
	g := graph.Ring(4)
	d := NewDriven(drivenConfig(g), nil)
	frames := d.Boot()
	if want := 2 * g.EdgeCount(); len(frames) != want {
		t.Fatalf("boot emitted %d frames, want %d (one per directed edge)", len(frames), want)
	}
	seen := map[[2]graph.ProcID]bool{}
	for _, f := range frames {
		if !g.HasEdge(f.From, f.To) {
			t.Errorf("frame %v travels a non-edge", f)
		}
		key := [2]graph.ProcID{f.From, f.To}
		if seen[key] {
			t.Errorf("duplicate boot frame on %d->%d", f.From, f.To)
		}
		seen[key] = true
		if f.EdgeIndex() != g.EdgeIndex(f.From, f.To) {
			t.Errorf("frame %v carries wrong edge index", f)
		}
	}
}

// TestDrivenVirtualClockStampsSessions: the pluggable clock is the only
// time source — eating sessions carry exactly the instants the driver's
// clock produced.
func TestDrivenVirtualClockStampsSessions(t *testing.T) {
	g := graph.Ring(4)
	vnow := time.Unix(1000, 0).UTC()
	d := NewDriven(drivenConfig(g), func() time.Time { return vnow })
	pending := d.Boot()
	for round := 0; round < 60; round++ {
		for p := 0; p < g.N(); p++ {
			vnow = vnow.Add(time.Millisecond)
			pending = append(pending, d.Tick(graph.ProcID(p))...)
		}
		window := pending
		pending = nil
		for _, f := range window {
			vnow = vnow.Add(time.Millisecond)
			pending = append(pending, d.Deliver(f)...)
		}
	}
	d.Finish()
	sessions := d.Network().Sessions()
	if len(sessions) == 0 {
		t.Fatal("no eating sessions in 60 driven rounds")
	}
	lo := time.Unix(1000, 0).UTC()
	for _, s := range sessions {
		if s.Start.Before(lo) || s.End.After(vnow) || s.End.Before(s.Start) {
			t.Errorf("session %v outside the virtual clock's range [%v, %v]", s, lo, vnow)
		}
	}
}

// TestDrivenReaderMatchesControlSurface: reader views reflect kills and
// malicious windows applied through the normal Network controls.
func TestDrivenReaderMatchesControlSurface(t *testing.T) {
	g := graph.Ring(4)
	d := NewDriven(drivenConfig(g), nil)
	rd := d.Reader()
	d.Boot()
	nw := d.Network()
	nw.Kill(1)
	nw.CrashMaliciously(2, 3)
	d.Tick(1)
	d.Tick(2)
	if !rd.Dead(1) {
		t.Error("killed node not dead through the reader")
	}
	if !rd.Malicious(2) || rd.Dead(2) {
		t.Error("node 2 should be mid-window: malicious, not yet dead")
	}
	d.Tick(2)
	d.Tick(2)
	if !rd.Dead(2) || rd.Malicious(2) {
		t.Error("node 2 should be dead after its 3-step window")
	}
	if rd.Graph() != g || rd.DiameterConst() != sim.SafeDepthBound(g) {
		t.Error("reader misreports graph or diameter")
	}
	for _, e := range g.Edges() {
		pr := rd.Priority(e)
		if pr != e.A && pr != e.B {
			t.Errorf("edge %v priority %d is not an endpoint", e, pr)
		}
	}
}
