// Transport fault injection: a pluggable per-frame decision hook on the
// delivery path, shared by the in-process channel transport, the TCP
// transport, and the driven (detsim) mode. The protocol's stabilization
// claim is exactly that none of these faults can break it — frames are
// full-state gossip, so drops and delays only slow convergence,
// duplicates are idempotent, and corrupted payloads are one more shape
// of the arbitrary state the K-state handshake already absorbs.
package msgpass

import (
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
)

// FaultDecision is what the delivery path does with one frame. The zero
// value passes the frame through untouched.
type FaultDecision struct {
	// Drop loses the frame in transit (gossip retransmits).
	Drop bool
	// Duplicates sends this many extra copies of the frame.
	Duplicates int
	// CorruptBits, when non-zero, scrambles the frame payload with
	// domain-respecting garbage derived from these bits — the in-flight
	// analogue of a malicious node's garbage frames.
	CorruptBits uint64
	// DelayTicks, when positive, holds the frame for roughly that many
	// gossip ticks before delivery (virtual rounds under a driver),
	// letting later frames overtake it — delay and reordering in one.
	DelayTicks int
}

// FaultInjector decides per-frame transport faults. Implementations
// must be safe for concurrent use in the goroutine runtime; under a
// single-threaded driver the call order is deterministic, so a seeded
// injector makes whole fault campaigns replayable (internal/chaos).
type FaultInjector interface {
	Decide(from, to graph.ProcID, edgeIdx int) FaultDecision
}

// applyFaults runs the configured injector on one frame and transmits
// the surviving copies. It is only called when an injector is set.
func (nw *Network) applyFaults(p graph.ProcID, m message) {
	d := nw.cfg.Faults.Decide(m.from, p, m.edgeIdx)
	if d.Drop {
		nw.faultsDropped.Add(1)
		nw.lost.Add(1)
		return
	}
	if d.CorruptBits != 0 {
		m = corruptMessage(m, d.CorruptBits, nw.d)
		nw.faultsCorrupted.Add(1)
	}
	for i := 0; i < d.Duplicates; i++ {
		nw.faultsDuplicated.Add(1)
		nw.transmit(p, m, d.DelayTicks)
	}
	nw.transmit(p, m, d.DelayTicks)
}

// delayKey identifies one directed channel: an edge plus the sending
// endpoint. Delays operate at channel granularity.
type delayKey struct {
	edge int
	from graph.ProcID
}

// transmit forwards one frame copy, honoring a delay. Delay is
// head-of-line blocking, not per-frame lateness: a delayed frame stalls
// its whole channel, and frames sent behind it queue in order until the
// delay expires. Per-channel FIFO is the one ordering property the
// K-state handshake needs — a stale counter delivered after newer
// frames can fake a second token — and it is the property every real
// transport here provides (Go channels, one TCP connection per edge).
// Other channels overtake the stalled one freely, which is where the
// observable reordering comes from. In the goroutine runtime a timer
// flushes the channel after roughly DelayTicks gossip periods; in
// driven mode the delay rides on the captured Frame and the
// deterministic driver holds the channel for that many virtual rounds.
func (nw *Network) transmit(p graph.ProcID, m message, delayTicks int) {
	if nw.driven {
		if delayTicks > 0 {
			nw.faultsDelayed.Add(1)
		}
		nw.sendFrame(p, m, delayTicks)
		return
	}
	key := delayKey{m.edgeIdx, m.from}
	nw.delayMu.Lock()
	if q, ok := nw.delayed[key]; ok {
		// Channel already stalled: queue behind the delayed frame. A
		// nested delay verdict is subsumed by the stall in progress.
		nw.delayed[key] = append(q, m)
		nw.delayMu.Unlock()
		return
	}
	if delayTicks <= 0 {
		nw.delayMu.Unlock()
		nw.transmitNow(p, m)
		return
	}
	nw.faultsDelayed.Add(1)
	nw.delayed[key] = []message{m}
	nw.delayMu.Unlock()
	time.AfterFunc(time.Duration(delayTicks)*nw.cfg.TickEvery, func() {
		nw.delayMu.Lock()
		q := nw.delayed[key]
		delete(nw.delayed, key)
		nw.delayMu.Unlock()
		for _, qm := range q {
			nw.transmitNow(p, qm)
		}
	})
}

// transmitNow hands the frame to the transport (or the in-process
// inbox) immediately.
func (nw *Network) transmitNow(p graph.ProcID, m message) {
	if nw.sendFrame != nil {
		if !nw.sendFrame(p, m, 0) {
			nw.lost.Add(1) // transport failure: gossip will retransmit
		}
		return
	}
	nw.inject(p, m)
}

// corruptMessage scrambles a frame's payload with domain-respecting
// garbage drawn from the given bits: a valid-looking state, a depth
// within the bound, and a priority claim for either endpoint. The
// K-state counter is deliberately left intact. Corrupting it would
// model a Byzantine channel that continuously forges token-possession
// proofs, which no stabilizing dining solution tolerates (the same
// reason the adversarial scheduler keeps channels FIFO) — and real
// transports checksum frames, turning bit corruption into the drops
// the Drop rate already models. What survives a checksum is garbage
// application payload, the in-flight analogue of a malicious node's
// garbage frames, and that is what this injects: it can stall or
// misdirect progress transiently, and the next genuine gossip on the
// edge repairs it.
func corruptMessage(m message, bits uint64, d int) message {
	x := splitmix(bits)
	m.state = core.State(x>>8%3 + 1)
	m.depth = int((x >> 16) % uint64(2*d+4))
	if x>>24&1 == 0 {
		m.priority = m.from
	}
	return m
}
