package exp

import (
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
	"mcdp/internal/workload"
)

// E2Stabilization measures convergence to the invariant I = NC ∧ ST ∧ E
// from random arbitrary states (Theorem 1), contrasting the paper's
// literal depth threshold D = diameter with the repaired threshold n-1,
// under two demand regimes:
//
//   - busy (always hungry): eating exits constantly re-orient the
//     priority graph, which usually stumbles into a stably-shallow
//     orientation even under the flawed threshold;
//   - quiet (never hungry): only the depth machinery moves, which is the
//     pure stabilization the theorem is about — and where the
//     D=diameter false positives livelock on rings.
//
// ring(3) with D=diameter is special: NO state satisfies the invariant
// at all (see E9), so it cannot converge under any demand.
func E2Stabilization(seeds []int64) Result {
	tops := []*graph.Graph{
		graph.Ring(3),
		graph.Ring(4),
		graph.Ring(6),
		graph.Grid(3, 3),
		graph.Path(8),
		graph.RandomTree(10, newRng(7)),
	}
	table := stats.NewTable(
		"E2: convergence to invariant I from arbitrary states",
		"topology", "threshold", "demand", "converged", "trials", "mean steps", "max steps",
	)
	for _, g := range tops {
		for _, mode := range []string{"diameter", "n-1"} {
			bound := 0 // paper's default: the diameter
			if mode == "n-1" {
				bound = sim.SafeDepthBound(g)
			}
			for _, demand := range []string{"busy", "quiet"} {
				wl := workload.AlwaysHungry()
				if demand == "quiet" {
					wl = workload.NeverHungry()
				}
				converged := 0
				var steps []int64
				budget := int64(g.N()) * 4000
				for _, seed := range seeds {
					w := sim.NewWorld(sim.Config{
						Graph:            g,
						Algorithm:        core.NewMCDP(),
						Workload:         wl,
						Seed:             seed,
						DiameterOverride: bound,
					})
					w.InitArbitrary(newRng(seed * 13))
					if s := stepsToInvariant(w, budget); s >= 0 {
						converged++
						steps = append(steps, s)
					}
				}
				sum := stats.SummarizeInts(steps)
				table.AddRow(g.Name(), mode, demand, converged, len(seeds), sum.Mean, sum.Max)
			}
		}
	}
	return Result{
		ID:    "E2",
		Claim: "Stabilization to I from arbitrary states (Thm 1); the D=diameter threshold has a convergence gap",
		Table: table,
		Notes: []string{
			"With the n-1 threshold every trial converges in both regimes. With D=diameter, ring(3) never",
			"converges (the invariant is unsatisfiable there — see E9) and quiet rings livelock: acyclic chain",
			"orientations longer than the diameter trip the cycle detector, whose false-positive exits recreate",
			"rotated chains forever. Busy systems often escape because eating exits keep re-orienting edges.",
			"Trees behave identically under both thresholds (a tree's diameter IS its longest path).",
		},
	}
}

// E2bClosureByRun verifies closure empirically on larger instances than
// the model checker reaches: once I holds, it keeps holding for the rest
// of the run.
func E2bClosureByRun(seeds []int64) Result {
	tops := []*graph.Graph{graph.Ring(8), graph.Grid(3, 4), graph.Complete(6)}
	table := stats.NewTable(
		"E2b: closure of I after convergence (violations over post-convergence steps)",
		"topology", "trials converged", "post-steps checked", "closure violations",
	)
	for _, g := range tops {
		var converged, violations int
		var postSteps int64
		for _, seed := range seeds {
			w := sim.NewWorld(sim.Config{
				Graph:            g,
				Algorithm:        core.NewMCDP(),
				Seed:             seed,
				DiameterOverride: sim.SafeDepthBound(g),
			})
			w.InitArbitrary(newRng(seed * 17))
			if stepsToInvariant(w, int64(g.N())*4000) < 0 {
				continue
			}
			converged++
			for i := 0; i < 2000; i++ {
				if _, ok := w.Step(); !ok {
					break
				}
				postSteps++
				if !invariantHolds(w) {
					violations++
				}
			}
		}
		table.AddRow(g.Name(), converged, postSteps, violations)
	}
	return Result{
		ID:    "E2b",
		Claim: "I is closed (Lemmas 1-4): once reached it never breaks",
		Table: table,
	}
}
