package exp

import (
	"fmt"

	"mcdp/internal/drinkers"
	"mcdp/internal/graph"
	"mcdp/internal/stats"
)

// E16DrinkersInheritance runs Chandy & Misra's drinking philosophers
// (the paper's reference [5], the generalized resource-allocation
// problem) on top of the diners core and verifies the layer inherits the
// fault tolerance: zero conflicting sessions ever, and after a malicious
// crash of the arbitration substrate, drinkers at distance >= 3 keep
// completing sessions at full rate while distance-1 drinkers throttle.
func E16DrinkersInheritance(seeds []int64) Result {
	table := stats.NewTable(
		"E16: drinkers (resource allocation) layered on the diners core",
		"topology", "sessions", "conflicts", "post-crash d>=3 kept drinking", "d<=1 throttled",
	)
	type tc struct {
		g      *graph.Graph
		victim graph.ProcID
	}
	cases := []tc{
		{graph.Grid(3, 4), 5},
		{graph.Ring(8), 0},
		{graph.Caterpillar(5, 1), 1},
	}
	for _, c := range cases {
		var totalSessions, conflicts int64
		farOK, nearThrottled := true, true
		for _, seed := range seeds {
			d := drinkers.New(drinkers.Config{
				Graph:    c.g,
				Sessions: drinkers.NewRandomSessions(c.g, 0.6, seed),
				Seed:     seed,
			})
			for i := 0; i < 25000; i++ {
				d.Step()
				conflicts += int64(len(d.ConflictingDrinkers()))
			}
			d.World().CrashMaliciously(c.victim, 20)
			d.Run(25000)
			mid := d.Drinks()
			for i := 0; i < 50000; i++ {
				d.Step()
				conflicts += int64(len(d.ConflictingDrinkers()))
			}
			final := d.Drinks()
			var nearRate, farRate float64
			var nearN, farN int
			for p := 0; p < c.g.N(); p++ {
				pid := graph.ProcID(p)
				totalSessions += final[p]
				if pid == c.victim {
					continue
				}
				delta := float64(final[p] - mid[p])
				switch dist := c.g.Dist(pid, c.victim); {
				case dist >= 3:
					farN++
					farRate += delta
					if delta == 0 {
						farOK = false
					}
				case dist <= 1:
					nearN++
					nearRate += delta
				}
			}
			if nearN > 0 && farN > 0 && nearRate/float64(nearN) > farRate/float64(farN) {
				nearThrottled = false
			}
		}
		table.AddRow(c.g.Name(), totalSessions, conflicts,
			yesno(farOK), fmt.Sprintf("%v", nearThrottled))
	}
	return Result{
		ID:    "E16",
		Claim: "Downstream resource allocation inherits locality 2 and exclusion (built on [5])",
		Table: table,
		Notes: []string{
			"Conflicting sessions: zero, always. After the substrate's arbitration process crashes",
			"maliciously, distant workers keep completing lock-set sessions at full rate while the",
			"crash's direct neighbors throttle — the diners guarantees lift to the application layer.",
		},
	}
}
