package exp

import (
	"math/rand"
	"testing"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/workload"
)

// TestSoakChaos throws randomized scenarios at the full stack: random
// topologies, random workloads, random arbitrary starts, and random
// fault barrages (benign, malicious, transient, in any combination and
// order). Invariants asserted per scenario:
//
//   - after the fault barrage and a settling window, the invariant I
//     holds and keeps holding;
//   - the starved set (under an always-hungry tail) sits within
//     distance 2 of the dead set;
//   - the eating-pair count is monotone under I (Theorem 3).
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	const scenarios = 24
	for i := 0; i < scenarios; i++ {
		i := i
		t.Run("", func(t *testing.T) {
			runChaosScenario(t, int64(i+1))
		})
	}
}

func runChaosScenario(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed * 7919))
	g := randomTopology(rng)
	// Random fault barrage within the first 4000 steps.
	plan := sim.NewFaultPlan()
	deadBudget := 1 + rng.Intn(2) // keep enough of the graph alive
	for f := 0; f < deadBudget; f++ {
		ev := sim.FaultEvent{
			Step: int64(rng.Intn(4000)),
			Proc: graph.ProcID(rng.Intn(g.N())),
		}
		switch rng.Intn(3) {
		case 0:
			ev.Kind = sim.BenignCrash
		case 1:
			ev.Kind = sim.MaliciousCrash
			ev.ArbitrarySteps = 1 + rng.Intn(40)
		default:
			ev.Kind = sim.TransientFault
		}
		plan.Add(ev)
	}
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		Workload:         workload.AlwaysHungry(),
		Seed:             seed,
		DiameterOverride: sim.SafeDepthBound(g),
		Faults:           plan,
	})
	if rng.Intn(2) == 0 {
		w.InitArbitrary(rng)
	}

	// Phase 1: ride out the barrage plus a settling window.
	w.Run(4000)
	settled := w.RunUntil(func(w *sim.World) bool {
		// All malicious windows must have closed and I must hold.
		for p := 0; p < g.N(); p++ {
			if w.Status(graph.ProcID(p)) == sim.Malicious {
				return false
			}
		}
		return spec.CheckInvariant(w).Holds()
	}, int64(g.N())*6000)
	if !settled {
		t.Fatalf("seed %d on %v: never settled into I after the barrage", seed, g)
	}

	// Phase 2: audited tail.
	const tail = 20000
	lastEat := make([]int64, g.N())
	for i := range lastEat {
		lastEat[i] = -1
	}
	mon := spec.NewMonitor()
	mon.CheckInvariantEvery = 20
	w.Observe(mon)
	start := w.Steps()
	w.Observe(sim.ObserverFunc(func(w *sim.World, step int64, c sim.Choice) {
		if !c.Malicious() && w.State(c.Proc) == core.Eating {
			lastEat[c.Proc] = step - start
		}
	}))
	w.Run(tail)
	rep := mon.Report()
	if rep.InvariantBroken != 0 || rep.MonotonicityBreaks != 0 {
		t.Errorf("seed %d on %v: audit failed: %v", seed, g, rep)
	}
	starved, within := spec.StarvationAudit(w, lastEat, tail/2, 2, nil)
	if !within {
		t.Errorf("seed %d on %v: starved set %v escaped the locality (dead %v)",
			seed, g, starved, spec.DeadProcs(w))
	}
}

func randomTopology(rng *rand.Rand) *graph.Graph {
	switch rng.Intn(6) {
	case 0:
		return graph.Ring(5 + rng.Intn(10))
	case 1:
		return graph.Path(5 + rng.Intn(10))
	case 2:
		return graph.Grid(2+rng.Intn(3), 2+rng.Intn(3))
	case 3:
		return graph.RandomTree(6+rng.Intn(10), rng)
	case 4:
		return graph.Wheel(5 + rng.Intn(6))
	default:
		return graph.RandomConnected(6+rng.Intn(8), 0.3, rng)
	}
}
