package exp

import (
	"fmt"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
)

// E12MultiCrash reproduces the paper's "no limit on the number of
// processes that can fail": k simultaneous malicious crashes are spread
// around a large ring and a grid, and every starved process must lie
// within distance 2 of SOME crash — the starved set is contained in the
// union of the per-crash locality balls, however many crashes there are.
func E12MultiCrash(seeds []int64) Result {
	type tc struct {
		g       *graph.Graph
		victims []graph.ProcID
	}
	cases := []tc{
		{graph.Ring(24), []graph.ProcID{0, 8, 16}},
		{graph.Ring(48), []graph.ProcID{0, 12, 24, 36}},
		{graph.Grid(6, 8), []graph.ProcID{0, 21, 26, 47}},
		{graph.Ring(48), []graph.ProcID{0, 6, 12, 18, 24, 30, 36, 42}},
	}
	table := stats.NewTable(
		"E12: k simultaneous malicious crashes (mcdp; max over seeds)",
		"topology", "crashes", "starved outside all balls", "max dist to nearest crash", "far eaters kept eating",
	)
	for _, c := range cases {
		worstOutside, worstDist := 0, -1
		farOK := true
		for _, seed := range seeds {
			plan := sim.NewFaultPlan()
			for _, v := range c.victims {
				plan.Add(sim.FaultEvent{
					Step: 500, Kind: sim.MaliciousCrash, Proc: v, ArbitrarySteps: 15,
				})
			}
			out := measuredRun(runOpts{
				g:      c.g,
				alg:    core.NewMCDP(),
				seed:   seed,
				bound:  sim.SafeDepthBound(c.g),
				budget: int64(c.g.N()) * 4000,
				faults: plan,
			})
			outside, dist, far := out.multiCrashReport(c.victims)
			if outside > worstOutside {
				worstOutside = outside
			}
			if dist > worstDist {
				worstDist = dist
			}
			farOK = farOK && far
		}
		table.AddRow(c.g.Name(), fmt.Sprintf("%d", len(c.victims)), worstOutside, worstDist, yesno(farOK))
	}
	return Result{
		ID:    "E12",
		Claim: "Unlimited failures: the starved set stays inside the union of radius-2 balls (§1)",
		Table: table,
		Notes: []string{
			"Unlike Byzantine tolerance (which caps the faulty fraction), any number of processes may",
			"crash maliciously; the damage is the union of their local balls and nothing more.",
		},
	}
}

// multiCrashReport computes, over the run's tail, (a) how many starved
// processes lie OUTSIDE every radius-2 ball around a crash, (b) the
// maximum distance from a starved process to its nearest crash, and (c)
// whether every process at distance >= 3 from all crashes kept eating.
func (o runOutcome) multiCrashReport(victims []graph.ProcID) (outside, maxDist int, farOK bool) {
	g := o.w.Graph()
	farOK = true
	maxDist = -1
	for p := 0; p < g.N(); p++ {
		pid := graph.ProcID(p)
		if o.w.Dead(pid) {
			continue
		}
		d := g.MinDistTo(pid, victims)
		starved := o.lastEat[p] < o.budget/2
		if starved {
			if d > maxDist {
				maxDist = d
			}
			if d >= 3 {
				outside++
			}
		} else if d >= 3 {
			// kept eating, as required
			continue
		}
		if d >= 3 && starved {
			farOK = false
		}
	}
	return outside, maxDist, farOK
}
