package exp

import (
	"fmt"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/stats"
	"mcdp/internal/workload"
)

// E15MaskingGap measures the paper's concluding research question: its
// solution guarantees only EVENTUAL correctness outside the failure
// locality during a malicious crash, whereas a "masking" solution (the
// authors' announced follow-up) would keep distant processes continuously
// correct even while the faulty process is still scribbling. How far is
// this algorithm from masking in practice? For growing malicious
// windows we measure, at distance >= 3 and DURING the window only:
// relativized safety violations and the worst liveness hiccup (the max
// inter-eat gap, normalized by the pre-crash gap).
func E15MaskingGap(seeds []int64) Result {
	g := graph.Ring(12)
	windows := []int{8, 32, 128, 512}
	table := stats.NewTable(
		"E15: disturbance at distance >= 3 DURING the malicious window (ring(12))",
		"window", "safety violations", "worst gap ratio", "trials",
	)
	const crashStep = 10000
	for _, k := range windows {
		var violations int64
		worstRatio := 0.0
		for _, seed := range seeds {
			v, r := maskingTrial(g, seed, crashStep, k)
			violations += v
			if r > worstRatio {
				worstRatio = r
			}
		}
		table.AddRow(fmt.Sprintf("%d", k), violations, worstRatio, len(seeds))
	}
	return Result{
		ID:    "E15",
		Claim: "The masking gap (concluding remarks): distant processes barely notice the window at all",
		Table: table,
		Notes: []string{
			"Zero relativized safety violations during the window at every size, and gap ratios stay near 1:",
			"in this algorithm the non-masking gap is confined to distances <= 2 — empirical support for the",
			"authors' claim that a fully masking variant is within reach.",
		},
	}
}

// maskingTrial returns (violations, worstGapRatio) for one seed.
func maskingTrial(g *graph.Graph, seed int64, crashStep int64, window int) (int64, float64) {
	victim := graph.ProcID(0)
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		Workload:         workload.AlwaysHungry(),
		Seed:             seed,
		DiameterOverride: sim.SafeDepthBound(g),
		Faults: sim.NewFaultPlan(sim.FaultEvent{
			Step: crashStep, Kind: sim.MaliciousCrash, Proc: victim, ArbitrarySteps: window,
		}),
	})
	n := g.N()
	far := make([]bool, n)
	for p := 0; p < n; p++ {
		far[p] = g.Dist(graph.ProcID(p), victim) >= 3
	}
	lastEat := make([]int64, n)
	maxGapBefore := make([]int64, n)
	maxGapDuring := make([]int64, n)
	var violations int64
	windowOpen := true
	w.Observe(sim.ObserverFunc(func(w *sim.World, step int64, c sim.Choice) {
		inWindow := step >= crashStep && windowOpen
		if w.Status(victim) == sim.Dead {
			windowOpen = false
		}
		if inWindow {
			// Relativize against the (still-scribbling) victim by
			// distance: a pair counts only if BOTH eaters sit at
			// distance >= 3 from it. spec.SafetyViolations keys on Dead
			// and would wrongly count pairs involving the victim's own
			// garbage-E state during the window.
			for _, e := range spec.EatingPairs(w) {
				if far[e.A] && far[e.B] {
					violations++
				}
			}
		}
		if c.Malicious() || w.State(c.Proc) != core.Eating {
			return
		}
		p := c.Proc
		gap := step - lastEat[p]
		if far[p] {
			if step < crashStep && gap > maxGapBefore[p] {
				maxGapBefore[p] = gap
			}
			if inWindow && gap > maxGapDuring[p] {
				maxGapDuring[p] = gap
			}
		}
		lastEat[p] = step
	}))
	w.Run(crashStep + int64(window)*int64(n)*4 + 8000)
	worst := 0.0
	for p := 0; p < n; p++ {
		if !far[p] || maxGapBefore[p] == 0 || maxGapDuring[p] == 0 {
			continue
		}
		if r := float64(maxGapDuring[p]) / float64(maxGapBefore[p]); r > worst {
			worst = r
		}
	}
	return violations, worst
}
