// Package exp defines the reproduction's experiment suite. The paper is a
// theory paper without an evaluation section, so the suite derives one
// experiment per theorem/claim (DESIGN.md's E1..E17 index, plus the
// Figure 2 replay) and reports each as a table. cmd/experiments prints the
// whole suite; bench_test.go wraps each experiment as a benchmark.
package exp

import (
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/stats"
	"mcdp/internal/workload"
)

// Result is one experiment's report.
type Result struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Claim is the paper claim under test.
	Claim string
	// Table holds the measurements.
	Table *stats.Table
	// Notes carries qualitative findings.
	Notes []string
	// Elapsed is the experiment's wall time (set by RunSuite).
	Elapsed time.Duration
}

// runOpts configures a measured run.
type runOpts struct {
	g         *graph.Graph
	alg       core.Algorithm
	wl        workload.Profile
	seed      int64
	bound     int // depth threshold (0 = paper's diameter)
	faults    *sim.FaultPlan
	budget    int64
	arbitrary bool // start from a random arbitrary state
	prepare   func(w *sim.World)
}

// runOutcome summarizes a measured run.
type runOutcome struct {
	w       *sim.World
	lastEat []int64 // -1 if never ate
	eats    []int64
	budget  int64
}

// measuredRun executes a run recording last-eat times.
func measuredRun(o runOpts) runOutcome {
	if o.wl == nil {
		o.wl = workload.AlwaysHungry()
	}
	w := sim.NewWorld(sim.Config{
		Graph:            o.g,
		Algorithm:        o.alg,
		Workload:         o.wl,
		Seed:             o.seed,
		DiameterOverride: o.bound,
		Faults:           o.faults,
	})
	if o.arbitrary {
		w.InitArbitrary(newRng(o.seed * 31))
	}
	if o.prepare != nil {
		o.prepare(w)
	}
	n := o.g.N()
	out := runOutcome{w: w, lastEat: make([]int64, n), eats: make([]int64, n), budget: o.budget}
	for i := range out.lastEat {
		out.lastEat[i] = -1
	}
	w.Observe(sim.ObserverFunc(func(w *sim.World, step int64, c sim.Choice) {
		if !c.Malicious() && w.State(c.Proc) == core.Eating {
			out.lastEat[c.Proc] = step
			out.eats[c.Proc]++
		}
	}))
	w.Run(o.budget)
	return out
}

// starvedRadius returns the maximum distance from a dead process of any
// live process that wants to eat but has not eaten in the second half of
// the run, plus the starved count. Radius is -1 when nothing starved.
// With no dead processes the distance of a starved process counts as the
// graph's diameter (the worst possible locality).
func (o runOutcome) starvedRadius() (radius, count int) {
	dead := spec.DeadProcs(o.w)
	radius = -1
	for p := 0; p < o.w.Graph().N(); p++ {
		pid := graph.ProcID(p)
		if o.w.Dead(pid) {
			continue
		}
		if o.lastEat[p] >= o.budget/2 {
			continue // still eating in the tail: not starved
		}
		count++
		d := o.w.Graph().MinDistTo(pid, dead)
		if len(dead) == 0 {
			d = o.w.Graph().Diameter()
		}
		if d > radius {
			radius = d
		}
	}
	return radius, count
}

// invariantHolds evaluates the paper's invariant I on the world.
func invariantHolds(w *sim.World) bool {
	return spec.CheckInvariant(w).Holds()
}

// stepsToInvariant runs w until I holds, returning the step count or -1
// if the budget elapsed first.
func stepsToInvariant(w *sim.World, budget int64) int64 {
	start := w.Steps()
	if w.RunUntil(invariantHolds, budget) {
		return w.Steps() - start
	}
	return -1
}
