package exp

import (
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/stats"
	"mcdp/internal/workload"
)

// E5CycleBreaking injects a full priority cycle around a ring and
// measures the steps until the live priority graph is acyclic again
// (predicate NC), for the paper's algorithm and for the ablation without
// the depth machinery, in two demand regimes. In the quiet regime
// (nobody ever eats) the depth machinery is the ONLY way to break the
// cycle: nodepth keeps it forever. In the busy regime a randomized
// daemon usually breaks cycles "by accident" — a hungry process enters
// in a moment when its ancestors happen to be Thinking, and its
// exit-yield re-orients the edges — which is exactly why the paper's
// adversarial-daemon analysis still needs fixdepth.
func E5CycleBreaking(seeds []int64, sizes []int) Result {
	table := stats.NewTable(
		"E5: steps to break an injected priority cycle on ring(n)",
		"algorithm", "demand", "n", "recovered", "trials", "mean steps", "max steps",
	)
	algs := []core.Algorithm{core.NewMCDP(), core.NewNoDepth()}
	for _, alg := range algs {
		for _, demand := range []string{"quiet", "busy"} {
			for _, n := range sizes {
				g := graph.Ring(n)
				wl := workload.NeverHungry()
				injected := core.Thinking // quiet: nobody wants or holds hunger
				if demand == "busy" {
					wl = workload.AlwaysHungry()
					injected = core.Hungry
				}
				recovered := 0
				var steps []int64
				for _, seed := range seeds {
					w := sim.NewWorld(sim.Config{
						Graph:            g,
						Algorithm:        alg,
						Workload:         wl,
						Seed:             seed,
						DiameterOverride: sim.SafeDepthBound(g),
					})
					for i := 0; i < n; i++ {
						w.SetPriority(graph.ProcID(i), graph.ProcID((i+1)%n), graph.ProcID(i))
						w.SetState(graph.ProcID(i), injected)
					}
					ok := w.RunUntil(func(w *sim.World) bool {
						return spec.AcyclicModuloDead(w)
					}, int64(n)*3000)
					if ok {
						recovered++
						steps = append(steps, w.Steps())
					}
				}
				sum := stats.SummarizeInts(steps)
				table.AddRow(alg.Name(), demand, n, recovered, len(seeds), sum.Mean, sum.Max)
			}
		}
	}
	return Result{
		ID:    "E5",
		Claim: "The depth machinery breaks every priority cycle (Lemma 1); without it, a quiet system deadlocks",
		Table: table,
		Notes: []string{
			"Quiet regime: nodepth never recovers (the cycle survives the whole budget); mcdp's recovery cost",
			"grows with the cycle length (depth must pump past the threshold). Busy regime: the randomized",
			"daemon lets even nodepth stumble out of the cycle via eating exits — the guarantee, not the",
			"typical case, is what fixdepth buys.",
		},
	}
}

// E5bDepthBounds confirms Corollary 1 on converged runs: once I holds,
// every live depth stays at or below the threshold.
func E5bDepthBounds(seeds []int64) Result {
	tops := []*graph.Graph{graph.Ring(6), graph.Grid(3, 3), graph.Path(9)}
	table := stats.NewTable(
		"E5b: depth bound after convergence (Cor 1)",
		"topology", "trials converged", "post-steps", "depth-bound violations",
	)
	for _, g := range tops {
		var converged, violations int
		var post int64
		for _, seed := range seeds {
			w := sim.NewWorld(sim.Config{
				Graph:            g,
				Algorithm:        core.NewMCDP(),
				Seed:             seed,
				DiameterOverride: sim.SafeDepthBound(g),
			})
			w.InitArbitrary(newRng(seed * 23))
			if stepsToInvariant(w, int64(g.N())*4000) < 0 {
				continue
			}
			converged++
			for i := 0; i < 1500; i++ {
				if _, ok := w.Step(); !ok {
					break
				}
				post++
				if !spec.DepthsBounded(w) {
					violations++
				}
			}
		}
		table.AddRow(g.Name(), converged, post, violations)
	}
	return Result{
		ID:    "E5b",
		Claim: "Under I every live depth is bounded by the threshold (Cor 1)",
		Table: table,
	}
}
