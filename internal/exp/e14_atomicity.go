package exp

import (
	"math/rand"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/lowatomic"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
	"mcdp/internal/trace"
	"mcdp/internal/workload"
)

// E14AtomicityRefinement quantifies the cost of the atomicity refinement
// the paper defers to its reference [15]: the same Figure 1 algorithm
// runs under composite atomicity (a guard reads all neighbors in one
// atomic step — the paper's presentation model) and under read/write
// atomicity (one register per step, with the K-state token handshake).
// We report meals per thousand atomic operations, the refinement's
// slowdown factor, and the fault behavior: locality must survive the
// refinement, including a benign crash landing BETWEEN the registers of
// a decomposed exit.
func E14AtomicityRefinement(seeds []int64) Result {
	table := stats.NewTable(
		"E14: composite vs register atomicity (always hungry, safe threshold)",
		"topology", "model", "eats/1k atomic ops", "slowdown", "locality after crash",
	)
	tops := []*graph.Graph{graph.Ring(6), graph.Ring(12), graph.Complete(4)}
	for _, g := range tops {
		composite := compositeThroughput(g, seeds)
		register := registerThroughput(g, seeds)
		slowdown := composite / register
		table.AddRow(g.Name(), "composite", composite, 1.0, "-")
		table.AddRow(g.Name(), "register", register, slowdown, registerLocality(g, seeds[0]))
	}
	return Result{
		ID:    "E14",
		Claim: "The atomicity refinement ([15], §4) preserves the properties at a constant-factor cost",
		Table: table,
		Notes: []string{
			"An atomic op is one action under composite atomicity and one register read/write under the",
			"refinement, so the slowdown mostly reflects the refresh traffic (~5 ops per neighbor per",
			"cycle). Safety holds at every atomic step from the legitimate start; a crash that lands",
			"between the registers of a half-finished exit is absorbed like any other local corruption.",
		},
	}
}

func compositeThroughput(g *graph.Graph, seeds []int64) float64 {
	var eats, steps int64
	for _, seed := range seeds {
		w := sim.NewWorld(sim.Config{
			Graph:            g,
			Algorithm:        core.NewMCDP(),
			Workload:         workload.AlwaysHungry(),
			Seed:             seed,
			DiameterOverride: sim.SafeDepthBound(g),
		})
		rec := trace.NewRecorder(g.N(), false)
		w.Observe(rec)
		steps += w.Run(30000)
		eats += rec.TotalEats()
	}
	return float64(eats) / float64(steps) * 1000
}

func registerThroughput(g *graph.Graph, seeds []int64) float64 {
	var eats, ops int64
	for _, seed := range seeds {
		m := lowatomic.New(lowatomic.Config{
			Graph:            g,
			Algorithm:        core.NewMCDP(),
			DiameterOverride: sim.SafeDepthBound(g),
			Seed:             seed,
		})
		ops += m.Run(150000)
		for _, e := range m.Eats() {
			eats += e
		}
	}
	return float64(eats) / float64(ops) * 1000
}

// registerLocality crashes a process maliciously mid-run under register
// atomicity and reports whether processes at distance >= 3 kept eating.
func registerLocality(g *graph.Graph, seed int64) string {
	if g.Diameter() < 3 {
		return "n/a (diameter < 3)"
	}
	m := lowatomic.New(lowatomic.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(g),
		Seed:             seed,
	})
	m.InitArbitrary(rand.New(rand.NewSource(seed * 37)))
	m.Run(50000)
	m.CrashMaliciously(0, 40)
	m.Run(150000)
	before := m.Eats()
	m.Run(250000)
	after := m.Eats()
	for p := 0; p < g.N(); p++ {
		if g.Dist(graph.ProcID(p), 0) >= 3 && after[p] <= before[p] {
			return "VIOLATED"
		}
	}
	return "holds"
}
