package exp

import (
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/stats"
)

// E3Safety seeds adversarial initial states in which neighbors are
// ALREADY eating together and measures (a) the steps until no live
// eating pair remains, and (b) Theorem 3's monotonicity: the number of
// live eating pairs never increases along the way.
func E3Safety(seeds []int64) Result {
	tops := []*graph.Graph{graph.Ring(8), graph.Complete(5), graph.Grid(3, 3)}
	table := stats.NewTable(
		"E3: eating-pair elimination from adversarial starts",
		"topology", "trials", "mean steps to 0 pairs", "max", "monotonicity violations",
	)
	for _, g := range tops {
		var steps []int64
		violations := 0
		for _, seed := range seeds {
			w := sim.NewWorld(sim.Config{
				Graph:            g,
				Algorithm:        core.NewMCDP(),
				Seed:             seed,
				DiameterOverride: sim.SafeDepthBound(g),
			})
			// Adversarial start: every process eating, arbitrary depths
			// and priorities.
			w.InitArbitrary(newRng(seed * 19))
			for p := 0; p < g.N(); p++ {
				w.SetState(graph.ProcID(p), core.Eating)
			}
			pairs := len(spec.EatingPairs(w))
			cleared := int64(-1)
			lowWater := pairs // pairs may transiently rise only before I holds
			inv := false
			for i := int64(0); i < 20000; i++ {
				if _, ok := w.Step(); !ok {
					break
				}
				cur := len(spec.EatingPairs(w))
				if !inv && invariantHolds(w) {
					inv = true
					lowWater = cur
				}
				if inv {
					// Theorem 3: non-increasing once I holds.
					if cur > lowWater {
						violations++
					}
					lowWater = cur
				}
				if cur == 0 && cleared < 0 {
					cleared = i + 1
				}
			}
			if cleared >= 0 {
				steps = append(steps, cleared)
			}
		}
		sum := stats.SummarizeInts(steps)
		table.AddRow(g.Name(), len(seeds), sum.Mean, sum.Max, violations)
	}
	return Result{
		ID:    "E3",
		Claim: "Safety converges and is monotone under I (Lemma 4, Thm 3)",
		Table: table,
		Notes: []string{
			"Every trial eliminates all live eating pairs; once I holds the pair count never increases.",
		},
	}
}
