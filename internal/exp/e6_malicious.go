package exp

import (
	"fmt"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
)

// E6MaliciousVsBenign compares the disruption of a benign crash with
// malicious crashes of growing arbitrary-step windows: the steps until
// the invariant I holds again after the process halts, and the starved
// radius. The paper's thesis is that the malicious window adds only a
// bounded, local recovery cost — far cheaper than Byzantine tolerance.
func E6MaliciousVsBenign(seeds []int64) Result {
	g := graph.Ring(12)
	windows := []int{0, 1, 8, 32, 128}
	table := stats.NewTable(
		"E6: recovery from benign vs malicious crashes on ring(12)",
		"arbitrary steps", "recovered", "trials", "mean steps to I", "max", "starved radius",
	)
	for _, k := range windows {
		recovered := 0
		var steps []int64
		worstRadius := -1
		for _, seed := range seeds {
			kind := sim.BenignCrash
			if k > 0 {
				kind = sim.MaliciousCrash
			}
			plan := sim.NewFaultPlan(sim.FaultEvent{
				Step: 1000, Kind: kind, Proc: 4, ArbitrarySteps: k,
			})
			out := measuredRun(runOpts{
				g:      g,
				alg:    core.NewMCDP(),
				seed:   seed,
				bound:  sim.SafeDepthBound(g),
				faults: plan,
				budget: 60000,
			})
			if r, _ := out.starvedRadius(); r > worstRadius {
				worstRadius = r
			}
			// Recovery cost: on a fresh run, count the steps from the
			// fault's injection until the invariant I holds with the
			// victim dead — i.e. the whole malicious window plus the
			// cleanup of whatever it corrupted.
			w := sim.NewWorld(sim.Config{
				Graph:            g,
				Algorithm:        core.NewMCDP(),
				Seed:             seed,
				DiameterOverride: sim.SafeDepthBound(g),
				Faults:           plan,
			})
			w.Run(1000) // the fault strikes at step 1000
			ok := w.RunUntil(func(w *sim.World) bool {
				return w.Status(4) == sim.Dead && invariantHolds(w)
			}, 100000)
			if ok {
				recovered++
				steps = append(steps, w.Steps()-1000)
			}
		}
		sum := stats.SummarizeInts(steps)
		label := "benign/0"
		if k > 0 {
			label = fmt.Sprintf("malicious/%d", k)
		}
		table.AddRow(label, recovered, len(seeds), sum.Mean, sum.Max, worstRadius)
	}
	return Result{
		ID:    "E6",
		Claim: "Malicious crashes cost only bounded local recovery beyond benign ones (Prop 1, §1)",
		Table: table,
		Notes: []string{
			"Recovery time grows mildly with the arbitrary-step window; the starved radius stays <= 2 throughout.",
		},
	}
}
