package exp

import (
	"strings"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/msgpass"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
)

// E8MessagePassing exercises the Section 4 transformation on live
// goroutines and channels: throughput, message cost per meal, safety
// (overlapping neighbor eating sessions must be zero), and locality under
// a mid-run malicious crash.
func E8MessagePassing(wallBudget time.Duration) Result {
	table := stats.NewTable(
		"E8: message-passing runtime (goroutines + channels, K-state tokens)",
		"topology", "fault", "total eats", "min eats", "msgs/eat", "overlaps", "dist>=3 kept eating",
	)
	cases := []msgpassCase{
		{graph.Ring(5), "none"},
		{graph.Complete(4), "none"},
		{graph.Path(6), "benign@0"},
		{graph.Ring(6), "malicious@2"},
		{graph.Ring(5), "none/tcp"},
	}
	for _, c := range cases {
		cfg := msgpass.Config{
			Graph:            c.g,
			Algorithm:        core.NewMCDP(),
			DiameterOverride: sim.SafeDepthBound(c.g),
			Seed:             42,
		}
		var nw *msgpass.Network
		if c.fault == "none/tcp" {
			var err error
			nw, err = msgpass.NewTCPNetwork(cfg)
			if err != nil {
				continue // no localhost sockets available; skip the row
			}
		} else {
			nw = msgpass.NewNetwork(cfg)
		}
		nw.Start()
		time.Sleep(wallBudget / 8)
		switch c.fault {
		case "benign@0":
			nw.Kill(0)
		case "malicious@2":
			nw.CrashMaliciously(2, 25)
		}
		time.Sleep(wallBudget / 4)
		mid := nw.Eats()
		time.Sleep(wallBudget * 5 / 8)
		nw.Stop()
		final := nw.Eats()

		var total, minEats int64
		minEats = -1
		for _, e := range final {
			total += e
			if minEats < 0 || e < minEats {
				minEats = e // inside the locality, 0 is allowed — see "kept"
			}
		}
		msgsPerEat := float64(nw.MessagesSent()) / float64(max64(total, 1))
		overlaps := len(nw.OverlappingNeighborSessions())
		kept := "n/a"
		if strings.Contains(c.fault, "@") {
			kept = "yes"
			for p := range final {
				if farFromFault(c, p) && final[p] <= mid[p] {
					kept = "no"
				}
			}
		}
		table.AddRow(c.g.Name(), c.fault, total, minEats, msgsPerEat, overlaps, kept)
	}
	return Result{
		ID:    "E8",
		Claim: "The message-passing transformation (§4) preserves safety, liveness, and locality",
		Table: table,
		Notes: []string{
			"Zero overlapping neighbor eating sessions in every case; processes at distance >= 3 from a",
			"crash keep eating. The K-state token doubles as the fork and the priority-variable owner.",
			"The none/tcp row runs the identical node logic over real TCP sockets (one per edge,",
			"gob-framed): a stabilizing protocol needs nothing from its transport beyond best effort.",
		},
	}
}

// E8bForkBaseline runs the classic Chandy-Misra fork-collection protocol
// (the route the paper's Section 4 calls cumbersome) on the same
// runtime substrate: frugal and safe when nothing fails, but a single
// crashed fork holder starves neighbors forever — no failure locality,
// no stabilization.
func E8bForkBaseline(wallBudget time.Duration) Result {
	table := stats.NewTable(
		"E8b: Chandy-Misra fork collection over channels (baseline)",
		"topology", "fault", "total eats", "min eats", "msgs/eat", "overlaps", "neighbors of crash stalled",
	)
	cases := []msgpassCase{
		{graph.Ring(5), "none"},
		{graph.Complete(4), "none"},
		{graph.Ring(5), "benign@0"},
	}
	for _, c := range cases {
		nw := msgpass.NewForkNetwork(msgpass.ForkConfig{Graph: c.g})
		nw.Start()
		time.Sleep(wallBudget / 8)
		if c.fault == "benign@0" {
			nw.Kill(0)
		}
		time.Sleep(wallBudget / 4)
		mid := nw.Eats()
		time.Sleep(wallBudget * 5 / 8)
		nw.Stop()
		final := nw.Eats()

		var total, minEats int64
		minEats = -1
		for _, e := range final {
			total += e
			if minEats < 0 || e < minEats {
				minEats = e
			}
		}
		msgsPerEat := float64(nw.MessagesSent()) / float64(max64(total, 1))
		stalled := "n/a"
		if c.fault == "benign@0" {
			stalled = "no"
			for _, q := range c.g.Neighbors(0) {
				if final[q] == mid[q] {
					stalled = "yes"
				}
			}
		}
		table.AddRow(c.g.Name(), c.fault, total, minEats, msgsPerEat,
			len(nw.OverlappingNeighborSessions()), stalled)
	}
	return Result{
		ID:    "E8b",
		Claim: "The classic fork protocol is cheaper fault-free but has no failure locality (§4 baseline)",
		Table: table,
		Notes: []string{
			"Fault-free message costs are comparable (CM ~4-6 frames/meal vs the stabilizing K-state",
			"gossip's ~4.5-9.5, the gap widening with degree) — but the classic protocol pays the moment",
			"a fork holder dies. On a ring the collapse is total: each survivor pries one dirty fork",
			"loose, which arrives clean and is then pinned at its hungry holder until that holder eats —",
			"which it never does, because the wait chain ends at the corpse. One crash starves the entire",
			"ring (TestForkNetworkCrashStarvesEveryone). The paper's transformation buys locality 2 and",
			"stabilization for a modest constant factor in traffic.",
		},
	}
}

// msgpassCase is one E8 scenario.
type msgpassCase struct {
	g     *graph.Graph
	fault string
}

// farFromFault reports whether p is at distance >= 3 from the fault
// victim in the test case.
func farFromFault(c msgpassCase, p int) bool {
	var victim graph.ProcID
	switch c.fault {
	case "benign@0":
		victim = 0
	case "malicious@2":
		victim = 2
	default:
		return false
	}
	return c.g.Dist(graph.ProcID(p), victim) >= 3
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
