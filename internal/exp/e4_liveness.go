package exp

import (
	"mcdp/internal/baseline"
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
	"mcdp/internal/trace"
	"mcdp/internal/workload"
)

// E4Liveness measures fault-free hunger-to-eat latency and throughput for
// the paper's algorithm against the classic hygienic baseline, sweeping
// the ring size. The point of the comparison is the price of tolerance:
// mcdp's extra caution (waiting on all ancestors, depth churn) costs
// latency/throughput in fault-free runs — what it buys appears only under
// crashes (E1).
func E4Liveness(seeds []int64, sizes []int) Result {
	algs := []core.Algorithm{core.NewMCDP(), baseline.NewHygienic()}
	table := stats.NewTable(
		"E4: fault-free latency and throughput on rings (always hungry)",
		"algorithm", "n", "eats/1k steps", "latency p50", "latency p90", "latency max",
	)
	for _, alg := range algs {
		for _, n := range sizes {
			g := graph.Ring(n)
			var allLat []int64
			var totalEats, totalSteps int64
			for _, seed := range seeds {
				w := sim.NewWorld(sim.Config{
					Graph:            g,
					Algorithm:        alg,
					Workload:         workload.AlwaysHungry(),
					Seed:             seed,
					DiameterOverride: sim.SafeDepthBound(g),
				})
				rec := trace.NewRecorder(n, false)
				w.Observe(rec)
				budget := int64(n) * 2000
				totalSteps += w.Run(budget)
				totalEats += rec.TotalEats()
				allLat = append(allLat, rec.Latencies()...)
			}
			sum := stats.SummarizeInts(allLat)
			throughput := float64(totalEats) / float64(totalSteps) * 1000
			table.AddRow(alg.Name(), n, throughput, sum.P50, sum.P90, sum.Max)
		}
	}
	return Result{
		ID:    "E4",
		Claim: "Liveness: every hungry process eats (Thm 2); tolerance costs fault-free performance",
		Table: table,
		Notes: []string{
			"Both algorithms keep everyone eating; hygienic is leaner fault-free, which is exactly the",
			"trade the paper proposes: mcdp pays steady-state overhead (leave/fixdepth churn) to bound",
			"failure locality under malicious crashes.",
		},
	}
}

// E4bFairnessAcrossSchedulers confirms liveness under every daemon the
// simulator offers, including the adversarial one.
func E4bFairnessAcrossSchedulers(seed int64) Result {
	g := graph.Ring(8)
	scheds := []sim.Scheduler{
		sim.NewRandomScheduler(seed),
		sim.NewRoundRobinScheduler(),
		sim.NewAdversarialScheduler(3, seed),
	}
	table := stats.NewTable(
		"E4b: minimum eats per process under different daemons (ring(8), 30k steps)",
		"scheduler", "min eats", "max eats", "victim(3) eats",
	)
	for _, sched := range scheds {
		w := sim.NewWorld(sim.Config{
			Graph:            g,
			Algorithm:        core.NewMCDP(),
			Workload:         workload.AlwaysHungry(),
			Scheduler:        sched,
			Seed:             seed,
			DiameterOverride: sim.SafeDepthBound(g),
		})
		rec := trace.NewRecorder(g.N(), false)
		w.Observe(rec)
		w.Run(30000)
		minE, maxE := rec.Eats(0), rec.Eats(0)
		for p := 1; p < g.N(); p++ {
			e := rec.Eats(graph.ProcID(p))
			if e < minE {
				minE = e
			}
			if e > maxE {
				maxE = e
			}
		}
		table.AddRow(sched.Name(), minE, maxE, rec.Eats(3))
	}
	return Result{
		ID:    "E4b",
		Claim: "Weak fairness suffices: even an adversarial daemon cannot starve a process",
		Table: table,
	}
}
