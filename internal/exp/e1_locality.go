package exp

import (
	"fmt"

	"mcdp/internal/baseline"
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
	"mcdp/internal/workload"
)

// E1FailureLocality measures the crash failure locality empirically in
// the scenario the dynamic threshold exists for: a PRE-FORMED waiting
// chain. On a path with priorities pointing toward process 0 (the
// default lower-ID orientation), every process is already Hungry when 0
// dies mid-meal. Without leave, each hungry process waits forever on its
// hungry ancestor — the whole chain starves. With leave, hungry
// processes with non-thinking ancestors step back to Thinking, the chain
// dissolves, and only processes within distance 2 of the crash starve.
//
// We report the maximum distance from the crash of any process that
// starves (stops eating in the second half of the run).
//
// Note the subtlety this scenario encodes: the join guard alone already
// stops FUTURE hunger from piling onto a blocked chain (a process will
// not join behind a hungry ancestor); leave is what dissolves hunger
// that exists BEFORE the crash manifests — hence the pre-formed chain.
func E1FailureLocality(seeds []int64, sizes []int) Result {
	algs := []core.Algorithm{core.NewMCDP(), core.NewNoYield(), baseline.NewHygienic()}
	table := stats.NewTable(
		"E1: starved radius after a crash at the head of a pre-formed hungry chain (max over seeds)",
		"algorithm", "n", "starved radius", "starved count",
	)
	notes := []string{}
	for _, alg := range algs {
		for _, n := range sizes {
			g := graph.Path(n)
			worstRadius, worstCount := -1, 0
			for _, seed := range seeds {
				out := measuredRun(runOpts{
					g:      g,
					alg:    alg,
					seed:   seed,
					bound:  sim.SafeDepthBound(g),
					budget: int64(n) * 4000,
					prepare: func(w *sim.World) {
						for p := 1; p < g.N(); p++ {
							w.SetState(graph.ProcID(p), core.Hungry)
						}
						w.SetState(0, core.Eating)
						w.Kill(0)
					},
				})
				r, c := out.starvedRadius()
				if r > worstRadius {
					worstRadius = r
				}
				if c > worstCount {
					worstCount = c
				}
			}
			table.AddRow(alg.Name(), n, worstRadius, worstCount)
		}
	}
	notes = append(notes,
		"mcdp's radius stays <= 2 regardless of n; noyield and hygienic starve the whole chain (radius n-1).")
	return Result{
		ID:    "E1",
		Claim: "Failure locality 2, optimal (Thm 2); unbounded without the dynamic threshold",
		Table: table,
		Notes: notes,
	}
}

// E1bLocalityTopologies repeats the locality measurement across
// topologies with a malicious (rather than benign) crash in the middle
// of the graph, under both a random daemon and an adversarial one that
// concentrates scheduling pressure on a process three hops from the
// crash — Theorem 2 quantifies over every weakly fair daemon, so the
// bound must survive the worst one we can build.
func E1bLocalityTopologies(seeds []int64) Result {
	type tc struct {
		g          *graph.Graph
		victim     graph.ProcID
		farProcess graph.ProcID // adversarial daemon's target, >= 3 hops out
	}
	cases := []tc{
		{graph.Ring(12), 0, 4},
		{graph.Grid(4, 4), 5, 15},
		{graph.Star(10), 0, 1},
		{graph.Caterpillar(6, 2), 2, 5},
	}
	table := stats.NewTable(
		"E1b: starved radius after a malicious crash (mcdp, max over seeds)",
		"topology", "victim", "daemon", "starved radius", "starved count",
	)
	for _, c := range cases {
		for _, daemon := range []string{"random", "adversarial"} {
			worstRadius, worstCount := -1, 0
			for _, seed := range seeds {
				var sched sim.Scheduler
				if daemon == "adversarial" {
					sched = sim.NewAdversarialScheduler(c.farProcess, seed)
				}
				plan := sim.NewFaultPlan(sim.FaultEvent{
					Step: 500, Kind: sim.MaliciousCrash, Proc: c.victim, ArbitrarySteps: 20,
				})
				out := measuredRunScheduled(runOpts{
					g:      c.g,
					alg:    core.NewMCDP(),
					seed:   seed,
					bound:  sim.SafeDepthBound(c.g),
					faults: plan,
					budget: 60000,
				}, sched)
				r, cnt := out.starvedRadius()
				if r > worstRadius {
					worstRadius = r
				}
				if cnt > worstCount {
					worstCount = cnt
				}
			}
			table.AddRow(c.g.Name(), fmt.Sprintf("%d", c.victim), daemon, worstRadius, worstCount)
		}
	}
	return Result{
		ID:    "E1b",
		Claim: "Locality 2 holds under malicious crashes across topologies and daemons (Prop 1, Thm 2)",
		Table: table,
		Notes: []string{
			"The adversarial daemon (fairness-guarded, as the model requires) targets a process three hops",
			"from the crash; the starved radius still never exceeds 2.",
		},
	}
}

// measuredRunScheduled is measuredRun with an explicit daemon.
func measuredRunScheduled(o runOpts, sched sim.Scheduler) runOutcome {
	if o.wl == nil {
		o.wl = workload.AlwaysHungry()
	}
	w := sim.NewWorld(sim.Config{
		Graph:            o.g,
		Algorithm:        o.alg,
		Workload:         o.wl,
		Scheduler:        sched,
		Seed:             o.seed,
		DiameterOverride: o.bound,
		Faults:           o.faults,
	})
	if o.prepare != nil {
		o.prepare(w)
	}
	n := o.g.N()
	out := runOutcome{w: w, lastEat: make([]int64, n), eats: make([]int64, n), budget: o.budget}
	for i := range out.lastEat {
		out.lastEat[i] = -1
	}
	w.Observe(sim.ObserverFunc(func(w *sim.World, step int64, c sim.Choice) {
		if !c.Malicious() && w.State(c.Proc) == core.Eating {
			out.lastEat[c.Proc] = step
			out.eats[c.Proc]++
		}
	}))
	w.Run(o.budget)
	return out
}
