package exp

import (
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
	"mcdp/internal/trace"
)

// E13ConvergenceScaling sweeps the system size and reports the
// stabilization cost (steps from a random arbitrary state to the
// invariant I) per topology family — the scaling data a systems reader
// would ask for first. The paper gives no complexity bound for
// convergence; empirically it grows modestly (roughly linearly in n on
// bounded-degree families) because corruption repairs are local:
// garbage depths drain through at most one exit per affected process,
// and cycles cost one depth pump each.
func E13ConvergenceScaling(seeds []int64) Result {
	families := []struct {
		name string
		make func(n int) *graph.Graph
	}{
		{"ring", func(n int) *graph.Graph { return graph.Ring(n) }},
		{"path", func(n int) *graph.Graph { return graph.Path(n) }},
		{"grid", func(n int) *graph.Graph {
			side := 2
			for side*side < n {
				side++
			}
			return graph.Grid(side, side)
		}},
		{"tree", func(n int) *graph.Graph { return graph.RandomTree(n, newRng(int64(n))) }},
	}
	sizes := []int{8, 16, 32, 64}
	table := stats.NewTable(
		"E13: stabilization cost vs system size (random arbitrary starts, safe threshold)",
		"family", "n", "edges", "mean steps to I", "p90", "max", "steps/n", "mean rounds",
	)
	for _, f := range families {
		for _, n := range sizes {
			g := f.make(n)
			var steps, rounds []int64
			for _, seed := range seeds {
				w := sim.NewWorld(sim.Config{
					Graph:            g,
					Algorithm:        core.NewMCDP(),
					Seed:             seed,
					DiameterOverride: sim.SafeDepthBound(g),
				})
				w.InitArbitrary(newRng(seed * 41))
				rc := trace.NewRoundCounter(g.N())
				w.Observe(rc)
				if s := stepsToInvariant(w, int64(g.N())*6000); s >= 0 {
					steps = append(steps, s)
					rounds = append(rounds, rc.Rounds())
				}
			}
			sum := stats.SummarizeInts(steps)
			rsum := stats.SummarizeInts(rounds)
			table.AddRow(f.name, g.N(), g.EdgeCount(), sum.Mean, sum.P90, sum.Max,
				sum.Mean/float64(g.N()), rsum.Mean)
		}
	}
	return Result{
		ID:    "E13",
		Claim: "Stabilization cost scales gently (≈ linear in n on bounded-degree graphs)",
		Table: table,
		Notes: []string{
			"Every trial converges; the steps/n column is roughly flat within each family, i.e. the",
			"repair work is proportional to the amount of corruption, not to some global coordination.",
			"The rounds column (asynchronous rounds, the literature's unit) stays small and nearly",
			"size-independent: convergence is a constant number of sweeps, parallelized across the graph.",
		},
	}
}
