package exp

import (
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the SHAPES the reproduction promises —
// who wins, what is bounded, what diverges — not absolute numbers.

func seeds2() []int64 { return []int64{1, 2} }

// rows extracts the rendered table rows (after the separator line) as
// whitespace-split cells.
func rows(r Result) [][]string {
	lines := strings.Split(strings.TrimSpace(r.Table.String()), "\n")
	var out [][]string
	for _, l := range lines[3:] { // title, header, separator
		out = append(out, strings.Fields(l))
	}
	return out
}

func TestE1ShapeLocalityTwoVsUnbounded(t *testing.T) {
	res := E1FailureLocality(seeds2(), []int{8, 16})
	for _, row := range rows(res) {
		alg, n, radius := row[0], row[1], row[2]
		switch alg {
		case "mcdp":
			if radius != "0" && radius != "1" && radius != "2" {
				t.Errorf("mcdp n=%s radius = %s, want <= 2", n, radius)
			}
		case "noyield", "hygienic":
			want := map[string]string{"8": "7", "16": "15"}[n]
			if radius != want {
				t.Errorf("%s n=%s radius = %s, want %s (whole chain)", alg, n, radius, want)
			}
		}
	}
}

func TestE1bShapeMaliciousLocality(t *testing.T) {
	res := E1bLocalityTopologies(seeds2())
	for _, row := range rows(res) {
		radius := row[3] // topology, victim, daemon, radius, count
		if radius != "-1" && radius != "0" && radius != "1" && radius != "2" {
			t.Errorf("topology %s under %s daemon: starved radius %s exceeds the locality 2",
				row[0], row[2], radius)
		}
	}
}

func TestE2ShapeThresholdGap(t *testing.T) {
	res := E2Stabilization([]int64{1, 2, 3})
	for _, row := range rows(res) {
		topo, threshold, demand, converged := row[0], row[1], row[2], row[3]
		if threshold == "n-1" && converged != "3" {
			t.Errorf("%s n-1 %s: converged %s/3 — the repaired threshold must always converge",
				topo, demand, converged)
		}
		if topo == "ring(3)" && threshold == "diameter" && converged != "0" {
			t.Errorf("ring(3) with D=diameter converged %s times; the invariant is unsatisfiable there",
				converged)
		}
		if topo == "ring(4)" && threshold == "diameter" && demand == "quiet" && converged != "0" {
			t.Errorf("quiet ring(4) with D=diameter converged %s times; expected the livelock", converged)
		}
	}
}

func TestE3ShapeNoMonotonicityViolations(t *testing.T) {
	res := E3Safety(seeds2())
	for _, row := range rows(res) {
		if v := row[len(row)-1]; v != "0" {
			t.Errorf("topology %s: %s monotonicity violations, want 0", row[0], v)
		}
	}
}

func TestE5ShapeDepthMachineryNecessity(t *testing.T) {
	res := E5CycleBreaking(seeds2(), []int{4, 8})
	for _, row := range rows(res) {
		alg, demand, recovered := row[0], row[1], row[3]
		switch {
		case alg == "mcdp" && recovered != "2":
			t.Errorf("mcdp %s recovered %s/2 trials", demand, recovered)
		case alg == "nodepth" && demand == "quiet" && recovered != "0":
			t.Errorf("nodepth quiet recovered %s trials; the cycle should be permanent", recovered)
		}
	}
}

func TestE6ShapeBoundedRecovery(t *testing.T) {
	res := E6MaliciousVsBenign(seeds2())
	rs := rows(res)
	for _, row := range rs {
		if row[1] != "2" {
			t.Errorf("%s recovered %s/2", row[0], row[1])
		}
		radius := row[len(row)-1]
		if radius != "-1" && radius != "0" && radius != "1" && radius != "2" {
			t.Errorf("%s starved radius %s > 2", row[0], radius)
		}
	}
}

func TestE7ShapeMasking(t *testing.T) {
	res := E7Masking(seeds2())
	for _, row := range rows(res) {
		if row[1] != "0" {
			t.Errorf("seed %s: %s relativized safety violations, want 0", row[0], row[1])
		}
	}
}

func TestE9ShapeExhaustiveVerdicts(t *testing.T) {
	res := E9ModelCheck()
	for _, row := range rows(res) {
		threshold := row[1]
		check := strings.Join(row[2:len(row)-2], " ")
		verdictCell := row[len(row)-1]
		switch {
		case threshold == "n-1" && verdictCell != "HOLDS":
			t.Errorf("%s %s under n-1: %s, want HOLDS", row[0], check, verdictCell)
		case threshold == "diameter" && strings.Contains(check, "convergence") && verdictCell != "VIOLATED":
			t.Errorf("%s %s under diameter: %s, want VIOLATED (the threshold gap)", row[0], check, verdictCell)
		}
	}
}

func TestE10ShapesAllRecover(t *testing.T) {
	for _, res := range []Result{E10DepthChoice(seeds2()), E10DiameterOverestimate(seeds2())} {
		for _, row := range rows(res) {
			if row[1] != "2" {
				t.Errorf("%s: row %v did not recover in all trials", res.ID, row)
			}
		}
	}
}

func TestE10bRecoveryScalesWithThreshold(t *testing.T) {
	res := E10DiameterOverestimate(seeds2())
	rs := rows(res)
	first := rs[0][2]
	last := rs[len(rs)-1][2]
	if first == last {
		t.Errorf("recovery cost did not grow with the threshold: %s vs %s", first, last)
	}
}

func TestE11ShapeOnlyMCDPInGoodQuadrant(t *testing.T) {
	res := E11CapabilityMatrix(seeds2())
	for _, row := range rows(res) {
		alg, local, stab := row[0], row[2], row[3]
		wantLocal := map[string]string{"mcdp": "yes", "nodepth": "yes", "noyield": "NO", "hygienic": "NO"}[alg]
		wantStab := map[string]string{"mcdp": "yes", "nodepth": "NO", "noyield": "yes", "hygienic": "NO"}[alg]
		if local != wantLocal || stab != wantStab {
			t.Errorf("%s: (locality=%s, stabilizes=%s), want (%s, %s)", alg, local, stab, wantLocal, wantStab)
		}
	}
}

func TestE12ShapeUnlimitedFailures(t *testing.T) {
	res := E12MultiCrash(seeds2())
	for _, row := range rows(res) {
		outside, far := row[2], row[len(row)-1]
		if outside != "0" {
			t.Errorf("%s with %s crashes: %s starved outside the locality balls", row[0], row[1], outside)
		}
		if far != "yes" {
			t.Errorf("%s with %s crashes: distant processes stopped eating", row[0], row[1])
		}
	}
}

func TestE13ShapeAllConverge(t *testing.T) {
	res := E13ConvergenceScaling(seeds2())
	for _, row := range rows(res) {
		// mean steps present and positive for every family/size.
		if row[3] == "0" {
			t.Errorf("%s n=%s: no converged trials", row[0], row[1])
		}
	}
}

func TestE17ShapeAdversaryAchievesEverything(t *testing.T) {
	res := E17OmniscientAdversary(seeds2())
	for _, row := range rows(res) {
		achieved := row[len(row)-1]
		if achieved != "2" {
			t.Errorf("row %v: achieved %s/2 — a daemon defeated a guarantee", row, achieved)
		}
	}
}

func TestE16ShapeZeroConflicts(t *testing.T) {
	res := E16DrinkersInheritance(seeds2())
	for _, row := range rows(res) {
		if row[2] != "0" {
			t.Errorf("%s: %s conflicting sessions, want 0", row[0], row[2])
		}
		if row[3] != "yes" {
			t.Errorf("%s: distant drinkers stalled after the crash", row[0])
		}
	}
}

func TestE15ShapeNoFarViolationsDuringWindow(t *testing.T) {
	res := E15MaskingGap(seeds2())
	for _, row := range rows(res) {
		if row[1] != "0" {
			t.Errorf("window %s: %s distance>=3 safety violations during the window, want 0",
				row[0], row[1])
		}
	}
}

func TestE14ShapeRefinementPreservesLocality(t *testing.T) {
	res := E14AtomicityRefinement(seeds2())
	for _, row := range rows(res) {
		if row[1] != "register" {
			continue
		}
		loc := row[len(row)-1]
		if loc == "VIOLATED" {
			t.Errorf("%s: the refinement lost the failure locality", row[0])
		}
	}
}

func TestRunSuiteQuickProducesAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	results := RunSuite(SuiteOptions{Seeds: []int64{1, 2}, Quick: true, MsgPassWall: 400 * time.Millisecond})
	wantIDs := []string{"E1", "E1b", "E2", "E2b", "E3", "E4", "E4b", "E5", "E5b", "E6", "E7", "E8", "E8b", "E9", "E10a", "E10b", "E10c", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "F1/F2"}
	if len(results) != len(wantIDs) {
		t.Fatalf("suite produced %d results, want %d", len(results), len(wantIDs))
	}
	for i, r := range results {
		if r.ID != wantIDs[i] {
			t.Errorf("result %d has ID %q, want %q", i, r.ID, wantIDs[i])
		}
		if r.Table == nil || len(rows(r)) == 0 {
			t.Errorf("%s has an empty table", r.ID)
		}
		if r.Claim == "" {
			t.Errorf("%s has no claim", r.ID)
		}
	}
}
