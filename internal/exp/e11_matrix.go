package exp

import (
	"mcdp/internal/baseline"
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
	"mcdp/internal/trace"
	"mcdp/internal/workload"
)

// E11CapabilityMatrix reproduces the paper's gap statement — "to the best
// of our knowledge no solution combines failure locality and
// stabilization" — as a 2x2 capability matrix. The nodepth ablation
// stands in for the prior optimal-locality-but-not-stabilizing solutions
// (Choy & Singh, Tsay & Bagrodia, Sivilotti et al.: dynamic-threshold
// priority schemes without transient-fault recovery); hygienic stands in
// for the classic stabilizing-unaware, locality-unbounded line. Only the
// paper's full algorithm lands in the good quadrant.
func E11CapabilityMatrix(seeds []int64) Result {
	algs := []core.Algorithm{
		core.NewMCDP(),
		core.NewNoDepth(),
		core.NewNoYield(),
		baseline.NewHygienic(),
	}
	table := stats.NewTable(
		"E11: capability matrix (path(16) crash chain; ring(6) cycle stabilization)",
		"algorithm", "starved radius", "locality<=2", "stabilizes", "fault-free eats/1k",
	)
	for _, alg := range algs {
		radius := localityRadius(alg, seeds)
		stab := stabilizes(alg, seeds)
		thr := throughput(alg, seeds[0])
		table.AddRow(alg.Name(), radius, yesno(radius >= 0 && radius <= 2), yesno(stab), thr)
	}
	return Result{
		ID:    "E11",
		Claim: "Only the paper's algorithm combines failure locality 2 with stabilization (§1 gap statement)",
		Table: table,
		Notes: []string{
			"nodepth models the prior locality-optimal, non-stabilizing solutions [7,17,18]; hygienic the",
			"classic stabilization-unaware line. mcdp alone occupies the (locality<=2, stabilizes) quadrant.",
		},
	}
}

// localityRadius measures the E1 pre-formed-chain starved radius at n=16.
func localityRadius(alg core.Algorithm, seeds []int64) int {
	g := graph.Path(16)
	worst := -1
	for _, seed := range seeds {
		out := measuredRun(runOpts{
			g:      g,
			alg:    alg,
			seed:   seed,
			bound:  sim.SafeDepthBound(g),
			budget: 64000,
			prepare: func(w *sim.World) {
				for p := 1; p < g.N(); p++ {
					w.SetState(graph.ProcID(p), core.Hungry)
				}
				w.SetState(0, core.Eating)
				w.Kill(0)
			},
		})
		if r, _ := out.starvedRadius(); r > worst {
			worst = r
		}
	}
	return worst
}

// stabilizes reports whether the algorithm breaks an injected quiet
// priority cycle on ring(6) in every trial.
func stabilizes(alg core.Algorithm, seeds []int64) bool {
	g := graph.Ring(6)
	for _, seed := range seeds {
		w := sim.NewWorld(sim.Config{
			Graph:            g,
			Algorithm:        alg,
			Workload:         workload.NeverHungry(),
			Seed:             seed,
			DiameterOverride: sim.SafeDepthBound(g),
		})
		for i := 0; i < g.N(); i++ {
			w.SetPriority(graph.ProcID(i), graph.ProcID((i+1)%g.N()), graph.ProcID(i))
		}
		ok := w.RunUntil(func(w *sim.World) bool {
			return invariantHolds(w)
		}, 20000)
		if !ok {
			return false
		}
	}
	return true
}

// throughput measures fault-free eats per thousand steps on ring(8).
func throughput(alg core.Algorithm, seed int64) float64 {
	g := graph.Ring(8)
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        alg,
		Workload:         workload.AlwaysHungry(),
		Seed:             seed,
		DiameterOverride: sim.SafeDepthBound(g),
	})
	rec := trace.NewRecorder(g.N(), false)
	w.Observe(rec)
	ran := w.Run(20000)
	if ran == 0 {
		return 0
	}
	return float64(rec.TotalEats()) / float64(ran) * 1000
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
