package exp

import (
	"mcdp/internal/check"
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/stats"
)

// E9ModelCheck runs the exhaustive explicit-state checks: closure of I,
// safety non-increase, possible convergence, and fair-daemon convergence,
// on the largest instances that fit, under both depth thresholds.
func E9ModelCheck() Result {
	table := stats.NewTable(
		"E9: exhaustive model checking (every state of each instance)",
		"instance", "threshold", "check", "states", "result",
	)
	invariant := check.LiftReader(func(r sim.StateReader) bool {
		return spec.CheckInvariant(r).Holds()
	})
	type tc struct {
		name  string
		g     *graph.Graph
		bound int
	}
	cases := []tc{
		{"ring(3)", graph.Ring(3), 2}, // n-1
		{"ring(3)", graph.Ring(3), 1}, // paper's diameter
		{"path(4)", graph.Path(4), 3}, // tree: diameter == n-1
		{"ring(4)", graph.Ring(4), 3}, // n-1
	}
	for _, c := range cases {
		mode := "n-1"
		if c.bound == c.g.Diameter() && c.bound != c.g.N()-1 {
			mode = "diameter"
		}
		sys := check.NewSystem(c.g, core.NewMCDP(), check.Options{Diameter: c.bound})

		cl := sys.CheckClosure(invariant)
		table.AddRow(c.name, mode, "closure of I", cl.Checked, verdict(cl.Holds()))

		ni := sys.CheckNonIncrease(invariant, func(st *check.State) int {
			return len(spec.EatingPairs(st))
		})
		table.AddRow(c.name, mode, "eating pairs non-increasing", ni.Checked, verdict(ni.Holds()))

		// The expensive convergence checks only on the small instances.
		if c.g.N() <= 3 {
			pc := sys.CheckPossibleConvergence(invariant)
			table.AddRow(c.name, mode, "possible convergence", pc.Total, verdict(pc.Holds()))
			fc := sys.CheckFairConvergence(invariant)
			table.AddRow(c.name, mode, "fair-daemon convergence", fc.Total, verdict(fc.Holds()))
		}
	}

	// Lemma 5 (red processes never turn green under I) needs a dead
	// process in the instance; check it on the two smallest interesting
	// topologies with the safe threshold.
	lemma5 := []struct {
		name string
		g    *graph.Graph
		dead []bool
	}{
		{"ring(3)+1 dead", graph.Ring(3), []bool{true, false, false}},
		{"path(4)+1 dead", graph.Path(4), []bool{true, false, false, false}},
	}
	for _, c := range lemma5 {
		sys := check.NewSystem(c.g, core.NewMCDP(), check.Options{
			Diameter: c.g.N() - 1,
			Dead:     c.dead,
		})
		res := sys.CheckSetMonotone(invariant, func(st *check.State) []bool {
			return spec.RedProcs(st)
		})
		table.AddRow(c.name, "n-1", "Lemma 5: red stays red", res.Checked, verdict(res.Holds()))
	}

	// Theorem 2 exhaustively: liveness from EVERY state under the fair
	// daemon — fault-free on ring(3) (everyone eats infinitely often)
	// and with a dead endpoint on path(4) (the distance-3 process eats
	// infinitely often; distance 2 is not guaranteed, being inside the
	// locality).
	{
		sys := check.NewSystem(graph.Ring(3), core.NewMCDP(), check.Options{Diameter: 2})
		lv := sys.CheckFairLiveness([]bool{true, true, true})
		table.AddRow("ring(3)", "n-1", "Thm 2: all eat infinitely often", lv.Total, verdict(lv.Holds()))
	}
	{
		sys := check.NewSystem(graph.Path(4), core.NewMCDP(), check.Options{
			Diameter: 3,
			Dead:     []bool{true, false, false, false},
		})
		lv := sys.CheckFairLiveness([]bool{false, false, false, true})
		table.AddRow("path(4)+1 dead", "n-1", "Thm 2: dist-3 eats infinitely often", lv.Total, verdict(lv.Holds()))
		lv2 := sys.CheckFairLiveness([]bool{false, false, true, false})
		table.AddRow("path(4)+1 dead", "n-1", "dist-2 may starve (locality boundary)", lv2.Total,
			verdict(!lv2.Holds()))
	}

	// Safety under EVERY daemon from the legitimate start (full
	// nondeterministic reachability).
	for _, g := range []*graph.Graph{graph.Ring(4), graph.Path(4)} {
		sys := check.NewSystem(g, core.NewMCDP(), check.Options{Diameter: g.N() - 1})
		rr := sys.CheckReachable(sys.LegitimateState(), check.LiftReader(spec.EatingExclusionHolds))
		table.AddRow(g.Name(), "n-1", "reachable-from-legit safety", rr.Reachable, verdict(rr.Holds()))
	}
	return Result{
		ID:    "E9",
		Claim: "Lemmas 1-4 and Theorem 3 verified exhaustively; the D=diameter gap is exhibited exactly",
		Table: table,
		Notes: []string{
			"With the n-1 threshold every check passes, including convergence from ALL states under a",
			"deterministic weakly fair daemon. With the paper's D=diameter on ring(3), NO state satisfies",
			"the invariant (stable shallowness is unsatisfiable on a triangle with D=1), so stabilization",
			"fails from every state — the sharpest possible statement of the threshold gap.",
			"Theorem 2 is verified exhaustively via terminal-cycle analysis: from all 405,000 states of",
			"path(4) with a dead endpoint, the distance-3 process eats infinitely often; the distance-2",
			"process starves from exactly 15,984 of them (the dead-eating-descendant pattern) — the",
			"locality boundary, measured to the state. Reachability rows verify safety under EVERY daemon",
			"from the legitimate start, not just the fair one.",
		},
	}
}

func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED"
}
