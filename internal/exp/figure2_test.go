package exp

import (
	"testing"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/spec"
)

func TestFigure2GraphShape(t *testing.T) {
	g := Figure2Graph()
	if g.N() != 7 {
		t.Fatalf("Figure 2 graph has %d vertices, want 7", g.N())
	}
	if g.Diameter() != 3 {
		t.Fatalf("Figure 2 graph diameter = %d; the paper states 3", g.Diameter())
	}
	if !g.Connected() {
		t.Fatal("Figure 2 graph must be connected")
	}
}

func TestFigure2InitialClassification(t *testing.T) {
	// In the first depicted state: a (dead), b, c are red; d is red too
	// once it has left... initially d is HUNGRY with a red-hungry
	// ancestor b — by RD's hungry rule d needs ancestors red AND
	// thinking, so hungry d is green (leave is its way out); e, f, g are
	// green.
	w := Figure2World(1)
	red := spec.RedProcs(w)
	wantRed := map[int]bool{0: true, 1: true, 2: true}
	for p, isRed := range red {
		if isRed != wantRed[p] {
			t.Errorf("process %s red=%v, want %v", Figure2Name(graph.ProcID(p)), isRed, wantRed[p])
		}
	}
}

func TestFigure2Storyline(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		out := RunFigure2(seed, 20000)
		if !out.Holds() {
			t.Errorf("seed %d: figure 2 storyline failed: %+v", seed, out)
		}
		// On the recorded seeds the replay matches the figure exactly:
		// g itself detects the cycle through its depth overflow.
		if !out.GBrokeCycle {
			t.Errorf("seed %d: g did not break the cycle as depicted: %+v", seed, out)
		}
	}
}

func TestFigure2StorylineManySeeds(t *testing.T) {
	// Over a wide seed sweep the unconditional storyline always holds,
	// whichever way the daemon lets the cycle dissolve.
	for seed := int64(1); seed <= 200; seed++ {
		out := RunFigure2(seed, 20000)
		if !out.Holds() {
			t.Errorf("seed %d: storyline failed: %+v", seed, out)
		}
	}
}

func TestFigure2LocalityBoundary(t *testing.T) {
	// d sits at distance 2 from the crashed a and must never be stuck in
	// Hungry at the end (the dynamic threshold parks it Thinking); e at
	// distance 3 eats.
	w := Figure2World(3)
	w.Run(20000)
	const d = 3
	if w.State(d) == core.Eating {
		t.Error("d must not be eating while b blocks it")
	}
	red := spec.RedProcs(w)
	radius, _ := spec.RedRadius(w)
	if radius > 2 {
		t.Errorf("red radius = %d, want <= 2 (red set %v)", radius, red)
	}
}
