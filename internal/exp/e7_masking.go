package exp

import (
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/stats"
	"mcdp/internal/workload"
)

// E7Masking tests the paper's masking claim for benign crashes: when a
// benign crash strikes a system already in a legitimate state, processes
// outside the failure locality are not merely eventually fine — they
// never misbehave at all. We measure (a) relativized safety violations
// after the crash (must be zero) and (b) the eating cadence of processes
// at distance >= 3: the ratio of their longest inter-eat gap after the
// crash to before it.
func E7Masking(seeds []int64) Result {
	g := graph.Ring(12)
	const crashStep = 15000
	const budget = 45000
	table := stats.NewTable(
		"E7: benign-crash masking outside the locality on ring(12)",
		"seed", "safety violations", "max gap before", "max gap after", "gap ratio",
	)
	var notes []string
	for _, seed := range seeds {
		w := sim.NewWorld(sim.Config{
			Graph:            g,
			Algorithm:        core.NewMCDP(),
			Workload:         workload.AlwaysHungry(),
			Seed:             seed,
			DiameterOverride: sim.SafeDepthBound(g),
			Faults: sim.NewFaultPlan(sim.FaultEvent{
				Step: crashStep, Kind: sim.BenignCrash, Proc: 0,
			}),
		})
		n := g.N()
		lastEat := make([]int64, n)
		maxGapBefore := make([]int64, n)
		maxGapAfter := make([]int64, n)
		violations := 0
		w.Observe(sim.ObserverFunc(func(w *sim.World, step int64, c sim.Choice) {
			if step >= crashStep && len(spec.SafetyViolations(w, 2)) > 0 {
				violations++
			}
			if c.Malicious() || w.State(c.Proc) != core.Eating {
				return
			}
			p := c.Proc
			gap := step - lastEat[p]
			if step < crashStep {
				if gap > maxGapBefore[p] {
					maxGapBefore[p] = gap
				}
			} else if lastEat[p] >= crashStep {
				if gap > maxGapAfter[p] {
					maxGapAfter[p] = gap
				}
			}
			lastEat[p] = step
		}))
		w.Run(budget)
		// Processes at distance >= 3 from the crash at 0 on ring(12):
		// 3..9.
		var worstBefore, worstAfter int64
		for p := 3; p <= 9; p++ {
			if maxGapBefore[p] > worstBefore {
				worstBefore = maxGapBefore[p]
			}
			if maxGapAfter[p] > worstAfter {
				worstAfter = maxGapAfter[p]
			}
		}
		ratio := float64(worstAfter) / float64(worstBefore)
		table.AddRow(seed, violations, worstBefore, worstAfter, ratio)
	}
	notes = append(notes,
		"Zero relativized safety violations; the eating cadence at distance >= 3 is unchanged (ratio ~ 1),",
		"i.e. the benign crash is masked outside the locality, not merely recovered from.")
	return Result{
		ID:    "E7",
		Claim: "Benign crashes are masked outside the failure locality (§3 intro)",
		Table: table,
		Notes: notes,
	}
}
