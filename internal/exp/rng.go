package exp

import "math/rand"

// newRng returns a seeded generator; all experiment randomness flows
// through explicit seeds so every table is reproducible.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
