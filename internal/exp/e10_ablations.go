package exp

import (
	"fmt"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/stats"
	"mcdp/internal/trace"
	"mcdp/internal/workload"
)

// E10DepthChoice resolves the fixdepth nondeterminism three ways and
// measures convergence from injected cycles: every resolution stabilizes
// (the paper's claim is choice-independent), but the speeds differ. The
// instance is a complete graph so processes have several descendants of
// different depths — on a ring each process has a single qualifying
// descendant and the choice cannot matter.
func E10DepthChoice(seeds []int64) Result {
	g := graph.Complete(7)
	table := stats.NewTable(
		"E10a: fixdepth nondeterminism resolution vs cycle-breaking speed (complete(7))",
		"choice", "recovered", "trials", "mean steps", "max steps",
	)
	choices := []struct {
		name string
		c    core.DepthChoice
	}{
		{"max", core.DepthMax},
		{"min", core.DepthMin},
		{"first", core.DepthFirst},
	}
	for _, ch := range choices {
		recovered := 0
		var steps []int64
		for _, seed := range seeds {
			// Quiet regime: nobody wants to eat, so only the depth
			// machinery can break the cycle — otherwise a busy
			// randomized run escapes through eating exits and masks the
			// choice entirely (see E5).
			w := sim.NewWorld(sim.Config{
				Graph:            g,
				Algorithm:        core.NewMCDPWithChoice(ch.c),
				Workload:         workload.NeverHungry(),
				Seed:             seed,
				DiameterOverride: sim.SafeDepthBound(g),
			})
			n := g.N()
			rng := newRng(seed * 29)
			// Hamiltonian priority cycle 0 -> 1 -> ... -> n-1 -> 0; the
			// chords keep their default lower-ID orientation. Random
			// depths make the descendant choice meaningful.
			for i := 0; i < n; i++ {
				w.SetPriority(graph.ProcID(i), graph.ProcID((i+1)%n), graph.ProcID(i))
				w.SetDepth(graph.ProcID(i), rng.Intn(n))
			}
			if s := stepsToInvariant(w, 60000); s >= 0 {
				recovered++
				steps = append(steps, s)
			}
		}
		sum := stats.SummarizeInts(steps)
		table.AddRow(ch.name, recovered, len(seeds), sum.Mean, sum.Max)
	}
	return Result{
		ID:    "E10a",
		Claim: "Every resolution of the fixdepth nondeterminism stabilizes; speed varies",
		Table: table,
	}
}

// E10DiameterOverestimate measures the cost of a conservative depth
// threshold: the algorithm stays correct for any threshold >= the true
// requirement, but cycle detection slows proportionally.
func E10DiameterOverestimate(seeds []int64) Result {
	g := graph.Ring(6)
	n := g.N()
	factors := []int{n - 1, 2 * n, 4 * n, 8 * n}
	table := stats.NewTable(
		"E10b: conservative depth threshold vs recovery cost (ring(6), injected cycle)",
		"threshold", "recovered", "mean steps to I", "fault-free eats/1k steps",
	)
	for _, bound := range factors {
		recovered := 0
		var steps []int64
		for _, seed := range seeds {
			// Quiet regime isolates the detector: recovery must pump a
			// depth past the threshold, so the cost scales with it.
			w := sim.NewWorld(sim.Config{
				Graph:            g,
				Algorithm:        core.NewMCDP(),
				Workload:         workload.NeverHungry(),
				Seed:             seed,
				DiameterOverride: bound,
			})
			for i := 0; i < n; i++ {
				w.SetPriority(graph.ProcID(i), graph.ProcID((i+1)%n), graph.ProcID(i))
			}
			if s := stepsToInvariant(w, int64(bound)*8000); s >= 0 {
				recovered++
				steps = append(steps, s)
			}
		}
		// Fault-free throughput with the same threshold.
		w := sim.NewWorld(sim.Config{
			Graph:            g,
			Algorithm:        core.NewMCDP(),
			Workload:         workload.AlwaysHungry(),
			Seed:             seeds[0],
			DiameterOverride: bound,
		})
		rec := trace.NewRecorder(n, false)
		w.Observe(rec)
		ran := w.Run(20000)
		throughput := float64(rec.TotalEats()) / float64(ran) * 1000
		sum := stats.SummarizeInts(steps)
		table.AddRow(fmt.Sprintf("%d", bound), recovered, sum.Mean, throughput)
	}
	return Result{
		ID:    "E10b",
		Claim: "Over-estimating the threshold keeps correctness; recovery cost grows linearly with it",
		Table: table,
	}
}

// E10Workloads varies the hunger profile and confirms liveness and
// throughput shaping under partial demand.
func E10Workloads(seed int64) Result {
	g := graph.Grid(3, 3)
	profiles := []workload.Profile{
		workload.AlwaysHungry(),
		workload.Bernoulli(0.5, seed),
		workload.Bernoulli(0.1, seed),
		workload.Phases(500, 500, seed),
		workload.RandomSubset(g.N(), 3, seed),
	}
	table := stats.NewTable(
		"E10c: hunger profiles on grid(3x3) (30k steps)",
		"workload", "total eats", "latency p50", "latency p99",
	)
	for _, wl := range profiles {
		w := sim.NewWorld(sim.Config{
			Graph:            g,
			Algorithm:        core.NewMCDP(),
			Workload:         wl,
			Seed:             seed,
			DiameterOverride: sim.SafeDepthBound(g),
		})
		rec := trace.NewRecorder(g.N(), false)
		w.Observe(rec)
		// RunIdling: sparse workloads leave the daemon with nothing
		// enabled at times; the clock must still advance for later
		// demand to arrive.
		w.RunIdling(30000)
		sum := stats.SummarizeInts(rec.Latencies())
		table.AddRow(wl.Name(), rec.TotalEats(), sum.P50, sum.P99)
	}
	return Result{
		ID:    "E10c",
		Claim: "Liveness holds across demand patterns; contention shapes latency",
		Table: table,
	}
}
