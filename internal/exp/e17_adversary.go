package exp

import (
	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/stats"
	"mcdp/internal/workload"
)

// E17OmniscientAdversary measures worst-case convergence: a daemon that
// inspects the entire global state and greedily avoids any step that
// would establish the goal. The paper's theorems quantify over all
// weakly fair daemons; this is the strongest such daemon short of
// exhaustive search. Two goals are attacked: breaking an injected
// priority cycle (stabilization) and feeding one chosen philosopher
// (liveness).
func E17OmniscientAdversary(seeds []int64) Result {
	table := stats.NewTable(
		"E17: omniscient adversarial daemon vs random (ring(5))",
		"goal", "daemon", "mean steps", "max steps", "achieved",
	)
	goalAcyclic := func(r sim.StateReader) bool { return spec.AcyclicModuloDead(r) }
	victim := graph.ProcID(2)
	goalVictimEats := func(r sim.StateReader) bool {
		return r.State(victim) == core.Eating
	}
	type scenario struct {
		name    string
		goal    func(r sim.StateReader) bool
		prepare func(w *sim.World)
		wl      workload.Profile
	}
	scenarios := []scenario{
		{
			name: "break injected cycle",
			goal: goalAcyclic,
			prepare: func(w *sim.World) {
				n := w.Graph().N()
				for i := 0; i < n; i++ {
					w.SetPriority(graph.ProcID(i), graph.ProcID((i+1)%n), graph.ProcID(i))
				}
			},
			wl: workload.NeverHungry(),
		},
		{
			name:    "victim's first meal",
			goal:    goalVictimEats,
			prepare: func(*sim.World) {},
			wl:      workload.AlwaysHungry(),
		},
	}
	g := graph.Ring(5)
	for _, sc := range scenarios {
		for _, daemon := range []string{"random", "omniscient"} {
			var steps []int64
			achieved := 0
			for _, seed := range seeds {
				var sched sim.Scheduler
				if daemon == "omniscient" {
					sched = sim.NewOmniscientScheduler(sc.goal)
				} else {
					sched = sim.NewRandomScheduler(seed)
				}
				w := sim.NewWorld(sim.Config{
					Graph:            g,
					Algorithm:        core.NewMCDP(),
					Workload:         sc.wl,
					Scheduler:        sched,
					Seed:             seed,
					DiameterOverride: sim.SafeDepthBound(g),
				})
				sc.prepare(w)
				if w.RunUntil(func(w *sim.World) bool { return sc.goal(w) }, 400000) {
					achieved++
					steps = append(steps, w.Steps())
				}
			}
			sum := stats.SummarizeInts(steps)
			table.AddRow(sc.name, daemon, sum.Mean, sum.Max, achieved)
		}
	}
	return Result{
		ID:    "E17",
		Claim: "Worst-case daemons delay but cannot defeat the guarantees (the theorems' ∀-daemon quantifier)",
		Table: table,
		Notes: []string{
			"The omniscient daemon applies each candidate step to a scratch state and picks whichever keeps",
			"the goal false; the fairness guard (the model's weak fairness) still forces progress. The gap",
			"between the random and omniscient columns is the empirical worst-case-to-average ratio.",
		},
	}
}
