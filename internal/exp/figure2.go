package exp

import (
	"fmt"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/spec"
	"mcdp/internal/workload"
)

// Figure-2 process names, in ProcID order.
var figure2Names = []string{"a", "b", "c", "d", "e", "f", "g"}

// Figure2Name renders a ProcID with the paper's letters.
func Figure2Name(p graph.ProcID) string {
	if int(p) < len(figure2Names) {
		return figure2Names[p]
	}
	return fmt.Sprintf("p%d", p)
}

// Figure2Graph reconstructs the 7-process topology of the paper's
// Figure 2: a neighbors b and c; d hangs off b; the triangle e,f,g hosts
// the priority cycle; d attaches to e; and c attaches to f, which gives
// the figure's stated diameter of 3.
func Figure2Graph() *graph.Graph {
	const (
		a = iota
		b
		c
		d
		e
		f
		g
	)
	return graph.NewBuilder("figure2", 7).
		AddEdge(a, b).
		AddEdge(a, c).
		AddEdge(b, d).
		AddEdge(c, f).
		AddEdge(d, e).
		AddEdge(e, f).
		AddEdge(e, g).
		AddEdge(f, g).
		Build()
}

// Figure2World builds the example's first state:
//
//   - a is dead while Eating (the malicious crash has completed);
//   - b is Hungry, blocked forever: its dead descendant a eats, and with
//     no non-thinking ancestor it cannot leave;
//   - c is Thinking, blocked by its dead eating ancestor a;
//   - d is Hungry with hungry direct ancestor b — the dynamic threshold
//     (leave) will move it out of the way;
//   - e, f, g form the priority cycle e->g->f->e with depths 2, 3, 3 —
//     fixdepth will push depth.g past D = 3 and g's exit breaks the
//     cycle, after which e eats.
func Figure2World(seed int64) *sim.World {
	const (
		a = iota
		b
		c
		d
		e
		f
		g
	)
	gr := Figure2Graph()
	w := sim.NewWorld(sim.Config{
		Graph:     gr,
		Algorithm: core.NewMCDP(),
		Workload:  workload.AlwaysHungry(),
		Seed:      seed,
	})
	// Priorities (ancestor -> descendant arrows).
	w.SetPriority(a, b, b) // b -> a: the dead eater is b's descendant
	w.SetPriority(a, c, a) // a -> c: c waits on its dead ancestor
	w.SetPriority(b, d, b) // b -> d
	w.SetPriority(d, e, d) // d -> e
	w.SetPriority(e, g, e) // e -> g \
	w.SetPriority(f, g, g) // g -> f  } the cycle e -> g -> f -> e
	w.SetPriority(e, f, f) // f -> e /
	w.SetPriority(c, f, f) // f -> c
	// States and depths of the first depicted state.
	w.SetState(a, core.Eating)
	w.Kill(a)
	w.SetState(b, core.Hungry)
	w.SetState(c, core.Thinking)
	w.SetState(d, core.Hungry)
	w.SetState(e, core.Hungry)
	w.SetState(f, core.Hungry)
	w.SetState(g, core.Hungry)
	w.SetDepth(e, 2)
	w.SetDepth(f, 3)
	w.SetDepth(g, 3)
	return w
}

// Figure2Outcome verifies the storyline of the example operation on a
// run of the given length.
type Figure2Outcome struct {
	// DLeft reports whether d executed leave (the dynamic threshold).
	DLeft bool
	// GBrokeCycle reports whether g specifically executed the
	// depth-triggered exit, as the figure depicts. Under some schedules
	// another cycle member's depth passes D first — equally valid cycle
	// detection by a different actor.
	GBrokeCycle bool
	// CycleBrokenByDepth reports whether SOME member of the e-g-f cycle
	// executed a depth-triggered exit — the mechanism the figure
	// illustrates. Under some daemons the cycle instead dissolves
	// through an ordinary eat-exit first (the paper says the cycle "can"
	// spin forever, not that it must; depth detection is the guarantee).
	CycleBrokenByDepth bool
	// CycleGone reports whether the injected e-g-f priority cycle no
	// longer exists at the end of the run.
	CycleGone bool
	// EAte reports whether e eventually ate.
	EAte bool
	// BAte and CAte must stay false: b and c are blocked by the crash.
	BAte, CAte bool
}

// Holds reports whether the example's unconditional storyline occurred:
// d yields, the cycle is gone, e dines, b and c never do. The
// depth-detection flags record HOW the cycle broke; seeds 1..8 (the
// recorded reproduction) break it through g's depth overflow exactly as
// the figure depicts — see TestFigure2Storyline.
func (o Figure2Outcome) Holds() bool {
	return o.DLeft && o.CycleGone && o.EAte && !o.BAte && !o.CAte
}

// RunFigure2 replays the example and checks its storyline.
func RunFigure2(seed, budget int64) Figure2Outcome {
	const (
		b = 1
		c = 2
		d = 3
		e = 4
		g = 6
	)
	w := Figure2World(seed)
	var out Figure2Outcome
	// Track, per cycle member, whether its depth exceeded D since its
	// last exit: only then does an exit count as depth-triggered cycle
	// detection.
	deep := map[graph.ProcID]bool{}
	cycle := map[graph.ProcID]bool{e: true, 5: true, g: true} // e, f, g
	w.Observe(sim.ObserverFunc(func(w *sim.World, _ int64, ch sim.Choice) {
		if ch.Malicious() {
			return
		}
		for p := range cycle {
			if w.Depth(p) > w.Graph().Diameter() {
				deep[p] = true
			}
		}
		switch {
		case ch.Proc == d && ch.Action == core.ActionLeave:
			out.DLeft = true
		case cycle[ch.Proc] && ch.Action == core.ActionExit:
			if deep[ch.Proc] {
				out.CycleBrokenByDepth = true
				if ch.Proc == g {
					out.GBrokeCycle = true
				}
			}
			deep[ch.Proc] = false
		}
		if w.State(ch.Proc) == core.Eating {
			switch ch.Proc {
			case e:
				out.EAte = true
			case b:
				out.BAte = true
			case c:
				out.CAte = true
			}
		}
	}))
	w.Run(budget)
	out.CycleGone = spec.AcyclicModuloDead(w)
	return out
}
