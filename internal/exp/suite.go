package exp

import (
	"time"

	"mcdp/internal/stats"
)

// SuiteOptions scales the experiment suite.
type SuiteOptions struct {
	// Seeds are the trial seeds per configuration.
	Seeds []int64
	// Quick shrinks sweeps for fast runs (benchmarks, CI).
	Quick bool
	// MsgPassWall is the wall-clock budget for the message-passing
	// experiment.
	MsgPassWall time.Duration
}

// DefaultSuiteOptions returns the options used to produce EXPERIMENTS.md.
func DefaultSuiteOptions() SuiteOptions {
	return SuiteOptions{
		Seeds:       []int64{1, 2, 3, 4, 5, 6, 7, 8},
		MsgPassWall: 1600 * time.Millisecond,
	}
}

// QuickSuiteOptions returns a reduced suite for smoke runs.
func QuickSuiteOptions() SuiteOptions {
	return SuiteOptions{
		Seeds:       []int64{1, 2, 3},
		Quick:       true,
		MsgPassWall: 600 * time.Millisecond,
	}
}

// RunSuite executes every experiment, stamping each result with its
// wall time, and returns them in index order.
func RunSuite(o SuiteOptions) []Result {
	sizes := []int{8, 16, 32, 64}
	e4sizes := []int{6, 12, 24}
	e5sizes := []int{4, 6, 8, 12}
	if o.Quick {
		sizes = []int{8, 16}
		e4sizes = []int{6, 12}
		e5sizes = []int{4, 8}
	}
	experiments := []func() Result{
		func() Result { return E1FailureLocality(o.Seeds, sizes) },
		func() Result { return E1bLocalityTopologies(o.Seeds) },
		func() Result { return E2Stabilization(o.Seeds) },
		func() Result { return E2bClosureByRun(o.Seeds) },
		func() Result { return E3Safety(o.Seeds) },
		func() Result { return E4Liveness(o.Seeds, e4sizes) },
		func() Result { return E4bFairnessAcrossSchedulers(o.Seeds[0]) },
		func() Result { return E5CycleBreaking(o.Seeds, e5sizes) },
		func() Result { return E5bDepthBounds(o.Seeds) },
		func() Result { return E6MaliciousVsBenign(o.Seeds) },
		func() Result { return E7Masking(o.Seeds[:min(4, len(o.Seeds))]) },
		func() Result { return E8MessagePassing(o.MsgPassWall) },
		func() Result { return E8bForkBaseline(o.MsgPassWall) },
		func() Result { return E9ModelCheck() },
		func() Result { return E10DepthChoice(o.Seeds) },
		func() Result { return E10DiameterOverestimate(o.Seeds[:min(4, len(o.Seeds))]) },
		func() Result { return E10Workloads(o.Seeds[0]) },
		func() Result { return E11CapabilityMatrix(o.Seeds[:min(4, len(o.Seeds))]) },
		func() Result { return E12MultiCrash(o.Seeds[:min(3, len(o.Seeds))]) },
		func() Result { return E13ConvergenceScaling(o.Seeds[:min(5, len(o.Seeds))]) },
		func() Result { return E14AtomicityRefinement(o.Seeds[:min(3, len(o.Seeds))]) },
		func() Result { return E15MaskingGap(o.Seeds[:min(4, len(o.Seeds))]) },
		func() Result { return E16DrinkersInheritance(o.Seeds[:min(2, len(o.Seeds))]) },
		func() Result { return E17OmniscientAdversary(o.Seeds[:min(3, len(o.Seeds))]) },
		func() Result { return FigureIndex(o.Seeds) },
	}
	results := make([]Result, 0, len(experiments))
	for _, run := range experiments {
		start := time.Now()
		r := run()
		r.Elapsed = time.Since(start)
		results = append(results, r)
	}
	return results
}

// FigureIndex reports the paper-artifact reproductions (Figures 1 and 2).
func FigureIndex(seeds []int64) Result {
	res := Result{
		ID:    "F1/F2",
		Claim: "Paper Figure 1 (the algorithm) and Figure 2 (example operation)",
	}
	tbl := stats.NewTable(
		"F2: example-operation replay",
		"seed", "d left", "g broke cycle", "e ate", "b,c blocked", "verdict",
	)
	for _, seed := range seeds {
		out := RunFigure2(seed, 20000)
		tbl.AddRow(seed, out.DLeft, out.GBrokeCycle, out.EAte, !out.BAte && !out.CAte, verdict(out.Holds()))
	}
	res.Table = tbl
	res.Notes = []string{
		"F1 is the core implementation itself (internal/core, conformance-tested action by action).",
		"F2 replays the 7-process example: d leaves (dynamic threshold), g breaks the e-g-f cycle when",
		"its depth passes the diameter 3, e then eats; b and c remain blocked by the crashed eater a.",
	}
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
