package lockservice

import (
	"errors"
	"fmt"
	"time"

	"mcdp/internal/control"
)

// This file is the actuator half of the hot-key feedback loop
// (internal/control is the sensor/decision half): MigrateKey moves one
// key between shards under the generation protocol, and rebalanceLoop
// runs the controller against it.
//
// A migration is three moves, each mirroring a fencing contract an
// earlier PR established:
//
//  1. Fence: record the key as migrating and bump the ring generation
//     (the failover idiom — fencing lands before anything new exists).
//     New acquires naming the key bounce with 409 at placement
//     resolution; acquires that resolved placement before the fence
//     and get granted after it are released by the router's post-grant
//     check before any client sees them.
//  2. Drain: wait until the source shard holds no live lease on the
//     key — holders release or their TTL expires (the PR 7/PR 9 drain
//     contract). A drain that outlives MigrationDrain aborts: the
//     fence lifts, placement is unchanged, clients re-resolve to the
//     same home.
//  3. Commit: with the fence deadline still standing and the source
//     re-probed lease-free under the router lock, install the override
//     (which bumps the generation again) and lift the fence. New
//     acquires route to the destination; the 409+generation path walks
//     every client over. A fence that expired before commit aborts
//     unconditionally — once routing stops honoring the fence,
//     acquires may have reached the source again, so the drain
//     observation is stale.
//
// Exclusion across the epoch therefore never depends on timing: a key
// has live leases on at most one shard because the override only lands
// after the source provably drained under a live fence, and no grant
// straddles the fence.

// migrationDrainPoll is the lease-drain polling period.
const migrationDrainPoll = time.Millisecond

// errMigrateInvalid tags MigrateKey failures that are defects in the
// request itself (a shard index that does not exist) rather than
// migration-state conflicts; the HTTP surface maps it to 400 where
// state conflicts — already migrating, drain timeout, leaderless
// destination — stay 409.
var errMigrateInvalid = errors.New("lockservice: invalid migrate request")

// migrationDrain resolves the configured drain budget.
func (r *Router) migrationDrain() time.Duration {
	if r.cfg.MigrationDrain > 0 {
		return r.cfg.MigrationDrain
	}
	// NewServer defaulted DefaultTTL on every shard: a lease abandoned
	// by its holder expires within one TTL, so TTL plus slack bounds
	// every honest drain.
	return r.sets[0].Primary().cfg.DefaultTTL + 500*time.Millisecond
}

// Controller returns the hot-key controller (nil when rebalancing is
// disabled) — status surfaces and tests.
func (r *Router) Controller() *control.Controller { return r.ctl }

// MigrateKey moves key to shard dst under the fence/drain/commit
// protocol above. It blocks for up to the drain budget and returns nil
// once new acquires for the key route to dst. Callers: the controller
// loop and POST /v1/admin/migrate.
func (r *Router) MigrateKey(key string, dst int) error {
	drain := r.migrationDrain()
	r.mu.Lock()
	if dst < 0 || dst >= len(r.sets) {
		r.mu.Unlock()
		return fmt.Errorf("%w: migrate %q: shard %d out of range [0,%d)", errMigrateInvalid, key, dst, len(r.sets))
	}
	src, ok := r.ring.Lookup(key)
	if !ok {
		r.mu.Unlock()
		return ErrUnserviceable
	}
	if src == dst {
		r.mu.Unlock()
		return fmt.Errorf("lockservice: migrate %q: already placed on shard %d", key, dst)
	}
	if !r.ring.Has(dst) {
		r.mu.Unlock()
		return fmt.Errorf("%w: migrate %q: shard %d not in ring", errMigrateInvalid, key, dst)
	}
	if m := r.fencedLocked(key, time.Now()); m != nil {
		r.mu.Unlock()
		return fmt.Errorf("lockservice: migrate %q: already migrating shard %d -> %d", key, m.src, m.dst)
	}
	if !r.sets[dst].primaryHealthy() {
		r.mu.Unlock()
		return fmt.Errorf("lockservice: migrate %q: destination shard %d is leaderless", key, dst)
	}
	m := &migration{key: key, src: src, dst: dst, deadline: time.Now().Add(drain)}
	r.migrating[key] = m
	r.ring.Bump() // fence epoch: in-flight resolvers must re-resolve
	r.pushRingGen()
	r.mu.Unlock()

	drained := false
	for time.Now().Before(m.deadline) {
		if r.sets[src].leasesOn(key) == 0 {
			drained = true
			break
		}
		time.Sleep(migrationDrainPoll)
	}

	r.mu.Lock()
	delete(r.migrating, key)
	abort := func(reason string) error {
		// Lift the fence under a fresh epoch so post-grant checks racing
		// the lift stay conservative; placement is unchanged.
		r.ring.Bump()
		r.pushRingGen()
		r.mu.Unlock()
		r.metrics.RebalancesAborted.Add(1)
		return fmt.Errorf("lockservice: migrate %q: %s", key, reason)
	}
	if !drained {
		return abort(fmt.Sprintf("shard %d leases did not drain within %v", src, drain))
	}
	// The fence is only trustworthy while its deadline holds: routing
	// treats an expired entry as absent (the wedged-migration escape
	// hatch), so past the deadline acquires may already have resolved
	// to the source and been granted there without tripping the
	// post-grant check. A drain observation that squeaked in just
	// before expiry proves nothing about the present — an expired
	// fence always aborts.
	if !time.Now().Before(m.deadline) {
		return abort(fmt.Sprintf("fence expired before commit (drain budget %v)", drain))
	}
	// Re-probe the source under mu: a resolver that placed the key
	// pre-fence may have been granted after the drain loop's last
	// look. Holding mu from this probe through the override install
	// makes the two atomic against stillPlaced, so a grant landing
	// after the probe runs its post-grant check against the committed
	// override and releases itself.
	if n := r.sets[src].leasesOn(key); n != 0 {
		return abort(fmt.Sprintf("shard %d regained %d lease(s) on the key before commit", src, n))
	}
	if !r.ring.Has(dst) {
		return abort(fmt.Sprintf("shard %d left the ring mid-drain", dst))
	}
	if cur, _ := r.ring.Lookup(key); cur == dst {
		// A membership change mid-drain already moved the key's hash
		// placement to dst: commit as a no-op under a fresh epoch.
		r.ring.Bump()
	} else if err := r.ring.SetOverride(key, dst); err != nil {
		return abort(err.Error())
	}
	r.overrideGen = r.ring.Generation()
	r.pushRingGen()
	r.mu.Unlock()
	r.metrics.Rebalances.Add(1)
	return nil
}

// OverrideState reports the override table's size and the generation
// of its last change (the "override table version" in /v1/status).
func (r *Router) OverrideState() (count int, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.OverrideCount(), r.overrideGen
}

// rebalanceLoop is the live feedback loop: every control period it
// asks the controller for migration plans, actuates them through
// MigrateKey, and publishes derived tuning (429 pacing to the HTTP
// surface, restart backoff to every shard supervisor). One log line
// per actuation, through the controller's sink.
func (r *Router) rebalanceLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.ctl.Interval())
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		}
		for _, p := range r.ctl.Plan(time.Now()) {
			err := r.MigrateKey(p.Key, p.To)
			r.ctl.Done(p, err)
			if err != nil {
				r.ctl.Logf("control: move %q shard %d -> %d aborted: %v", p.Key, p.From, p.To, err)
			} else {
				r.ctl.Logf("control: moved %q shard %d -> %d (ring generation %d)", p.Key, p.From, p.To, r.generation())
			}
		}
		adv := r.ctl.Advice()
		r.advice.Store(&adv)
		for _, set := range r.sets {
			set.Primary().AdviseRestartBackoff(adv.SupervisorBackoff)
		}
	}
}

// retryAfterHint is the 429 Retry-After value: the controller's
// observed-latency pacing when the loop is running, else the legacy
// fixed second.
func (r *Router) retryAfterHint() string {
	if adv := r.advice.Load(); adv != nil {
		return fmt.Sprintf("%.3f", adv.RetryAfter.Seconds())
	}
	return "1"
}
