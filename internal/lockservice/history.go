package lockservice

import (
	"fmt"
	"sort"
	"sync"

	"mcdp/internal/drinkers"
	"mcdp/internal/graph"
)

// HistoryKind tags a recorded session lifecycle event.
type HistoryKind uint8

// Session lifecycle events: a session is submitted, then either canceled
// while pending or granted and eventually released (lease expiry flows
// through release).
const (
	HSubmit HistoryKind = iota + 1
	HGrant
	HRelease
	HCancel
)

// String implements fmt.Stringer.
func (k HistoryKind) String() string {
	switch k {
	case HSubmit:
		return "submit"
	case HGrant:
		return "grant"
	case HRelease:
		return "release"
	case HCancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// HistoryEvent is one recorded lifecycle transition. Seq is a total
// order consistent with the arbiter's internal state order (events are
// recorded under the arbiter's mutex), so interval reasoning over Seq is
// exact, not approximate.
type HistoryEvent struct {
	Seq     int64
	Kind    HistoryKind
	Session int64
	Home    graph.ProcID
	Bottles []int
}

// String implements fmt.Stringer.
func (e HistoryEvent) String() string {
	return fmt.Sprintf("#%d %s s%d home=%d bottles=%v", e.Seq, e.Kind, e.Session, e.Home, e.Bottles)
}

// History records the acquire/release history of a lock-service run and
// checks it for mutual exclusion and per-lock linearizability. Wire it
// to an arbiter with Tap (production servers pass Config.History; the
// deterministic harness taps its own arbiter). Recording grows without
// bound, so it is a verification harness, not an always-on production
// counter.
type History struct {
	mu     sync.Mutex
	seq    int64                       // guarded by mu
	nextID int64                       // guarded by mu
	ids    map[*drinkers.Session]int64 // guarded by mu
	events []HistoryEvent              // guarded by mu
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{ids: make(map[*drinkers.Session]int64)}
}

// Tap wires h into the arbiter's lifecycle hooks. It must be called
// before the arbiter is shared across goroutines, and replaces any hooks
// previously set.
func (h *History) Tap(a *drinkers.Arbiter) {
	a.OnSubmit = func(s *drinkers.Session) { h.record(HSubmit, s) }
	a.OnGrant = func(s *drinkers.Session) { h.record(HGrant, s) }
	a.OnRelease = func(s *drinkers.Session) { h.record(HRelease, s) }
	a.OnCancel = func(s *drinkers.Session) { h.record(HCancel, s) }
}

// record appends one event, assigning session IDs in submit order.
func (h *History) record(k HistoryKind, s *drinkers.Session) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id, ok := h.ids[s]
	if !ok {
		h.nextID++
		id = h.nextID
		h.ids[s] = id
	}
	if k == HRelease || k == HCancel {
		delete(h.ids, s) // the session object is finished; free the map
	}
	h.seq++
	h.events = append(h.events, HistoryEvent{
		Seq:     h.seq,
		Kind:    k,
		Session: id,
		Home:    s.Home,
		Bottles: append([]int(nil), s.Bottles...),
	})
}

// Events returns a copy of the recorded history in Seq order.
func (h *History) Events() []HistoryEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]HistoryEvent(nil), h.events...)
}

// Len returns the number of recorded events.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// Check verifies the recorded history against g's locks and returns all
// violations found (nil means the history is clean). See CheckEvents.
func (h *History) Check(g *graph.Graph) []string { return CheckEvents(g, h.Events()) }

// CheckEvents verifies that a lock history is legal:
//
//   - lifecycle order: each session is submitted exactly once, granted at
//     most once after its submit, and released or canceled at most once
//     after that; nothing follows a release or cancel;
//   - placement: every bottle of a session is an edge incident to its
//     home worker;
//   - mutual exclusion / per-lock linearizability: projecting the grants
//     onto any single bottle, the hold intervals [grant, release) are
//     pairwise disjoint in the Seq order. Because each grant then lies
//     inside its own [submit, release) window and no two holds of one
//     lock overlap, choosing each grant and release as its operation's
//     linearization point yields a legal sequential mutex history — so
//     interval disjointness per bottle is exactly per-lock
//     linearizability for this API.
//
// A still-open grant (no release recorded) holds its bottles to the end
// of the history.
func CheckEvents(g *graph.Graph, events []HistoryEvent) []string {
	var bad []string
	type life struct {
		submit, grant, release int64 // Seq, 0 = absent
		home                   graph.ProcID
		bottles                []int
	}
	lives := make(map[int64]*life)
	order := make([]int64, 0, len(events))
	for _, e := range events {
		l := lives[e.Session]
		if l == nil {
			l = &life{}
			lives[e.Session] = l
			order = append(order, e.Session)
		}
		switch e.Kind {
		case HSubmit:
			if l.submit != 0 {
				bad = append(bad, fmt.Sprintf("session %d submitted twice (#%d, #%d)", e.Session, l.submit, e.Seq))
				continue
			}
			l.submit = e.Seq
			l.home = e.Home
			l.bottles = e.Bottles
			for _, b := range e.Bottles {
				if b < 0 || b >= g.EdgeCount() {
					bad = append(bad, fmt.Sprintf("session %d bottle %d out of range", e.Session, b))
					continue
				}
				ed := g.Edges()[b]
				if ed.A != e.Home && ed.B != e.Home {
					bad = append(bad, fmt.Sprintf("session %d bottle %v not incident to home %d", e.Session, ed, e.Home))
				}
			}
		case HGrant:
			switch {
			case l.submit == 0:
				bad = append(bad, fmt.Sprintf("session %d granted (#%d) before any submit", e.Session, e.Seq))
			case l.grant != 0:
				bad = append(bad, fmt.Sprintf("session %d granted twice (#%d, #%d)", e.Session, l.grant, e.Seq))
			case l.release != 0:
				bad = append(bad, fmt.Sprintf("session %d granted (#%d) after its release (#%d)", e.Session, e.Seq, l.release))
			default:
				l.grant = e.Seq
			}
		case HRelease, HCancel:
			switch {
			case l.submit == 0:
				bad = append(bad, fmt.Sprintf("session %d %s (#%d) before any submit", e.Session, e.Kind, e.Seq))
			case l.release != 0:
				bad = append(bad, fmt.Sprintf("session %d finished twice (#%d, #%d)", e.Session, l.release, e.Seq))
			case e.Kind == HRelease && l.grant == 0:
				bad = append(bad, fmt.Sprintf("session %d released (#%d) without a grant", e.Session, e.Seq))
			case e.Kind == HCancel && l.grant != 0:
				bad = append(bad, fmt.Sprintf("session %d canceled (#%d) after its grant (#%d)", e.Session, e.Seq, l.grant))
			default:
				l.release = e.Seq
			}
		}
	}
	// Per-bottle hold intervals, checked for pairwise disjointness.
	type hold struct {
		from, to int64
		session  int64
	}
	holds := make(map[int][]hold)
	for _, id := range order {
		l := lives[id]
		if l.grant == 0 {
			continue
		}
		to := l.release
		if to == 0 {
			to = int64(len(events)) + 1 // still held at end of history
		}
		for _, b := range l.bottles {
			holds[b] = append(holds[b], hold{from: l.grant, to: to, session: id})
		}
	}
	bottles := make([]int, 0, len(holds))
	for b := range holds {
		bottles = append(bottles, b)
	}
	sort.Ints(bottles)
	for _, b := range bottles {
		hs := holds[b]
		sort.Slice(hs, func(i, j int) bool { return hs[i].from < hs[j].from })
		for i := 1; i < len(hs); i++ {
			if hs[i].from < hs[i-1].to {
				bad = append(bad, fmt.Sprintf(
					"bottle %d held by sessions %d and %d concurrently (#%d..#%d overlaps #%d..#%d)",
					b, hs[i-1].session, hs[i].session, hs[i-1].from, hs[i-1].to, hs[i].from, hs[i].to))
			}
		}
	}
	return bad
}
