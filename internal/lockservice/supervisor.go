package lockservice

import (
	"time"

	"mcdp/internal/graph"
	"mcdp/internal/msgpass"
)

// SupervisorConfig tunes the self-healing supervisor: a loop that
// health-checks every worker and restarts crashed ones, so the service
// rides through kills and malicious crashes without an operator. The
// paper's stabilization does the hard part — a revived node converges
// from any state — which is what makes a supervisor this simple sound.
type SupervisorConfig struct {
	// CheckEvery is the health-check period (default 50ms).
	CheckEvery time.Duration
	// BackoffBase is the delay after a restart attempt before the next
	// one for the same node (default 200ms). It doubles per consecutive
	// attempt while the node stays down, capped at BackoffMax (default
	// 5s), and resets once the node is seen alive — capped exponential
	// backoff, so a node that dies the instant it revives (a crash loop)
	// cannot busy-spin the service.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Garbage revives nodes with arbitrary state instead of the
	// legitimate initial state — the adversarial setting for chaos runs.
	Garbage bool
}

// superviseLoop is the supervisor body, started by Start when
// Config.Supervise is set. Every restart it issues goes through
// RestartNode, so stale leases homed at the dead incarnation are fenced
// before the node rejoins.
func (s *Server) superviseLoop() {
	defer s.wg.Done()
	sc := s.cfg.Supervise
	check := sc.CheckEvery
	if check <= 0 {
		check = 50 * time.Millisecond
	}
	base := sc.BackoffBase
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	maxB := sc.BackoffMax
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	mode := msgpass.RestartClean
	if sc.Garbage {
		mode = msgpass.RestartArbitrary
	}
	nextAttempt := make([]time.Time, s.g.N())
	backoff := make([]time.Duration, s.g.N())
	t := time.NewTicker(check)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		now := time.Now()
		for p := 0; p < s.g.N(); p++ {
			pid := graph.ProcID(p)
			if s.Departed(pid) {
				// A leave is not a crash: the node is gone on purpose, and
				// reviving it would resurrect a retired identity. The check
				// sits before the backoff gate so a leave that lands while a
				// restart timer is already pending still wins.
				backoff[p] = 0
				continue
			}
			if !s.nw.Snapshot(pid).Dead {
				backoff[p] = 0
				continue
			}
			if now.Before(nextAttempt[p]) {
				continue // a restart is in flight or backing off
			}
			if backoff[p] == 0 {
				backoff[p] = base
				// The rebalance controller, when running, re-derives the
				// backoff base from observed grant latency: a plant that
				// grants in microseconds revives probes faster than one
				// grinding through contention.
				if adv := time.Duration(s.adviseBackoff.Load()); adv > 0 {
					backoff[p] = adv
				}
			} else {
				backoff[p] *= 2
				if backoff[p] > maxB {
					backoff[p] = maxB
				}
			}
			nextAttempt[p] = now.Add(backoff[p])
			_, _ = s.RestartNode(pid, mode) // in-range by construction
		}
	}
}
