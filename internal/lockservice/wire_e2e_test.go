package lockservice

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcdp/internal/graph"
	"mcdp/internal/wire"
)

// startWireListener serves the backend over the framed binary
// transport on a loopback port.
func startWireListener(t *testing.T, backend wire.Backend) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ws := wire.NewServer(wire.ServerConfig{Backend: backend})
	go ws.Serve(ln)
	t.Cleanup(ws.Close)
	return ln.Addr().String()
}

// TestWireEndToEndSurvivesMaliciousCrash is the wire-transport mirror
// of TestEndToEndServiceSurvivesMaliciousCrash: concurrent clients
// over the framed binary protocol, a malicious crash injected through
// the HTTP admin surface (admin stays HTTP-only), far-edge load
// proving failure locality 2, and the shadow ledger proving mutual
// exclusion. Run under -race in CI.
func TestWireEndToEndSurvivesMaliciousCrash(t *testing.T) {
	g := DemoTopology() // 3x4 grid; victim 0 is a corner
	const victim = graph.ProcID(0)

	srv := NewServer(Config{
		Graph:     g,
		Seed:      7,
		TickEvery: 300 * time.Microsecond,
	})
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Stop(ctx)
	}()
	wireAddr := startWireListener(t, srv.WireBackend())
	ts := httptest.NewServer(srv.Handler()) // admin + status facade
	defer ts.Close()

	ledger := newShadowLedger()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	acquireHold := func(c *wire.Client, resource string, timeout time.Duration) (bool, error) {
		grant, err := c.Acquire(ctx, []string{resource}, timeout, 0)
		if err != nil {
			return false, err
		}
		ledger.granted([]string{resource}, grant.SessionID)
		time.Sleep(2 * time.Millisecond)
		ledger.released([]string{resource}, grant.SessionID)
		if err := c.Release(ctx, grant.SessionID); err != nil {
			return true, fmt.Errorf("release %s: %w", grant.SessionID, err)
		}
		return true, nil
	}

	allEdges := make([]string, 0, g.EdgeCount())
	for _, e := range g.Edges() {
		allEdges = append(allEdges, EdgeName(e))
	}

	// Phase 1: 8 wire clients hammer the whole edge set concurrently,
	// sharing pooled pipelined connections.
	var (
		wg       sync.WaitGroup
		grantsMu sync.Mutex
		grants   int
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := wire.NewClient(wireAddr)
			defer c.Close()
			for i := 0; i < 12; i++ {
				res := allEdges[(w*5+i*3)%len(allEdges)]
				ok, err := acquireHold(c, res, 2*time.Second)
				if err != nil {
					var wireErr *wire.Error
					if errors.As(err, &wireErr) && wireErr.Code == 408 {
						continue // contention timeout: acceptable
					}
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if ok {
					grantsMu.Lock()
					grants++
					grantsMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if grants < 50 {
		t.Fatalf("phase 1 completed only %d acquire/release cycles", grants)
	}

	// Quiesce before injecting the fault; status rides the HTTP facade,
	// demonstrating both transports serving the same core concurrently.
	hc := NewClient(ts.URL)
	waitFor(t, ctx, 5*time.Second, "quiescence", func() (bool, string) {
		rep, err := hc.Status(ctx)
		if err != nil {
			return false, err.Error()
		}
		return rep.ActiveLeases == 0 && rep.QueueDepth == 0,
			fmt.Sprintf("leases=%d queue=%d", rep.ActiveLeases, rep.QueueDepth)
	})

	if err := hc.Crash(ctx, int(victim), 20); err != nil {
		t.Fatalf("crash injection: %v", err)
	}
	waitFor(t, ctx, 5*time.Second, "victim halt", func() (bool, string) {
		rep, err := hc.Status(ctx)
		if err != nil {
			return false, err.Error()
		}
		for _, n := range rep.Nodes {
			if n.ID == int(victim) {
				return n.Dead, n.State
			}
		}
		return false, "victim missing from status"
	})

	// Phase 2: far edges only — both endpoints at distance >= 2 from
	// the victim must still be granted (failure locality 2), over wire.
	var farEdges []string
	for _, e := range g.Edges() {
		if g.Dist(e.A, victim) >= 2 && g.Dist(e.B, victim) >= 2 {
			farEdges = append(farEdges, EdgeName(e))
		}
	}
	if len(farEdges) < 8 {
		t.Fatalf("only %d far edges on the demo grid; topology assumption broken", len(farEdges))
	}
	for _, res := range farEdges {
		wg.Add(1)
		go func(res string) {
			defer wg.Done()
			c := wire.NewClient(wireAddr)
			defer c.Close()
			deadline := time.Now().Add(25 * time.Second)
			for {
				ok, err := acquireHold(c, res, 1500*time.Millisecond)
				if ok && err == nil {
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("far lock %s never granted after the crash (last err: %v)", res, err)
					return
				}
			}
		}(res)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Phase 3: garbage revival through the admin API; victim-incident
	// locks must be granted again over wire.
	if _, err := hc.Restart(ctx, int(victim), true); err != nil {
		t.Fatalf("restart injection: %v", err)
	}
	waitFor(t, ctx, 5*time.Second, "victim revival", func() (bool, string) {
		rep, err := hc.Status(ctx)
		if err != nil {
			return false, err.Error()
		}
		for _, n := range rep.Nodes {
			if n.ID == int(victim) {
				return !n.Dead && n.Incarnation > 0, fmt.Sprintf("dead=%v inc=%d", n.Dead, n.Incarnation)
			}
		}
		return false, "victim missing from status"
	})
	var victimEdges []string
	for _, e := range g.Edges() {
		if e.A == victim || e.B == victim {
			victimEdges = append(victimEdges, EdgeName(e))
		}
	}
	for _, res := range victimEdges {
		wg.Add(1)
		go func(res string) {
			defer wg.Done()
			c := wire.NewClient(wireAddr)
			defer c.Close()
			deadline := time.Now().Add(25 * time.Second)
			for {
				ok, err := acquireHold(c, res, 1500*time.Millisecond)
				if ok && err == nil {
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("victim-incident lock %s never granted after revival (last err: %v)", res, err)
					return
				}
			}
		}(res)
	}
	wg.Wait()

	if v := ledger.violations(); len(v) > 0 {
		t.Fatalf("mutual exclusion violated:\n%s", strings.Join(v, "\n"))
	}
}

// TestWireFacadeParity proves the two transports front one core: a
// lease granted over wire is visible to and releasable through the
// HTTP facade, and vice versa; renew works across transports; a 409
// from a sharded router carries the live generation over wire exactly
// as it does over HTTP.
func TestWireFacadeParity(t *testing.T) {
	router := NewRouter(RouterConfig{
		Shards: 2,
		Base: Config{
			Graph:     graph.Grid(2, 2),
			Seed:      11,
			TickEvery: 300 * time.Microsecond,
		},
	})
	router.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		router.Stop(ctx)
	}()
	wireAddr := startWireListener(t, router.WireBackend())
	ts := httptest.NewServer(router.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wc := wire.NewClient(wireAddr)
	defer wc.Close()
	hc := NewClient(ts.URL)

	// Pick one key per shard from the routable catalog.
	keys := map[int][]string{}
	for _, e := range router.Shard(0).Graph().Edges() {
		name := EdgeName(e)
		if s, err := router.shardFor([]string{name}); err == nil {
			keys[s] = append(keys[s], name)
		}
	}
	if len(keys[0]) == 0 || len(keys[1]) == 0 {
		t.Fatalf("catalog did not cover both shards: %v", keys)
	}

	// Wire acquire -> HTTP status sees the lease -> HTTP release frees it.
	g0, err := wc.Acquire(ctx, []string{keys[0][0]}, 2*time.Second, 0)
	if err != nil {
		t.Fatalf("wire acquire: %v", err)
	}
	rep, err := hc.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if rep.ActiveLeases != 1 {
		t.Fatalf("HTTP facade reports %d active leases for a wire grant", rep.ActiveLeases)
	}
	if err := hc.Release(ctx, g0.SessionID); err != nil {
		t.Fatalf("HTTP release of wire-granted session: %v", err)
	}

	// HTTP acquire -> wire renew extends it -> wire release frees it.
	g1, err := hc.Acquire(ctx, []string{keys[1][0]}, 2*time.Second, 0)
	if err != nil {
		t.Fatalf("HTTP acquire: %v", err)
	}
	if ttl, err := wc.Renew(ctx, g1.SessionID, 10*time.Second); err != nil || ttl <= 0 {
		t.Fatalf("wire renew of HTTP-granted session: %v (ttl %v)", err, ttl)
	}
	if err := wc.Release(ctx, g1.SessionID); err != nil {
		t.Fatalf("wire release of HTTP-granted session: %v", err)
	}

	// A shard-spanning span session is transport-agnostic too: acquired
	// over wire, its two sub-leases are visible to the HTTP facade,
	// renewable and releasable through it as one unit.
	spanSet := []string{keys[0][0], keys[1][0]}
	gs, err := wc.Acquire(ctx, spanSet, 2*time.Second, 0)
	if err != nil {
		t.Fatalf("wire span acquire: %v", err)
	}
	if !strings.HasPrefix(gs.SessionID, "span:") {
		t.Fatalf("wire span session %q lacks span: prefix", gs.SessionID)
	}
	rep, err = hc.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if rep.ActiveLeases != 2 {
		t.Fatalf("HTTP facade reports %d active leases for a wire span (one sub-lease per shard expected)", rep.ActiveLeases)
	}
	if ttl, err := hc.Renew(ctx, gs.SessionID, 10*time.Second); err != nil || ttl <= 0 {
		t.Fatalf("HTTP renew of wire-granted span: %v (ttl %v)", err, ttl)
	}
	if err := hc.Release(ctx, gs.SessionID); err != nil {
		t.Fatalf("HTTP release of wire-granted span: %v", err)
	}

	// And the reverse direction: HTTP span acquire, wire renew/release.
	gh, err := hc.Acquire(ctx, spanSet, 2*time.Second, 0)
	if err != nil {
		t.Fatalf("HTTP span acquire: %v", err)
	}
	if !strings.HasPrefix(gh.SessionID, "span:") {
		t.Fatalf("HTTP span session %q lacks span: prefix", gh.SessionID)
	}
	if ttl, err := wc.Renew(ctx, gh.SessionID, 10*time.Second); err != nil || ttl <= 0 {
		t.Fatalf("wire renew of HTTP-granted span: %v (ttl %v)", err, ttl)
	}
	if err := wc.Release(ctx, gh.SessionID); err != nil {
		t.Fatalf("wire release of HTTP-granted span: %v", err)
	}
	waitFor(t, ctx, 5*time.Second, "span quiescence", func() (bool, string) {
		rep, err := hc.Status(ctx)
		if err != nil {
			return false, err.Error()
		}
		return rep.ActiveLeases == 0, fmt.Sprintf("leases=%d", rep.ActiveLeases)
	})

	// Same key, same placement on both transports: the wire hello's
	// generation matches the ring endpoint's.
	info, err := hc.Ring(ctx)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	if wc.RingGen() != info.Generation {
		t.Fatalf("wire hello generation %d != ring generation %d", wc.RingGen(), info.Generation)
	}

	// A ring membership change invalidates cached generations on both
	// transports; the wire client recovers through the 409 retry path.
	if err := router.RingLeave(1); err != nil {
		t.Fatalf("ring leave: %v", err)
	}
	g2, err := wc.Acquire(ctx, []string{keys[0][0]}, 2*time.Second, 0)
	if err != nil {
		t.Fatalf("wire acquire across ring change: %v", err)
	}
	if wc.RingGen() != info.Generation+1 {
		t.Fatalf("wire client did not adopt the post-leave generation: %d", wc.RingGen())
	}
	if err := wc.Release(ctx, g2.SessionID); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// TestServerRenewExtendsLease proves a renewed lease outlives its
// original TTL and that renewal respects fencing.
func TestServerRenewExtendsLease(t *testing.T) {
	srv := NewServer(Config{
		Graph:      graph.Grid(2, 2),
		Seed:       3,
		TickEvery:  300 * time.Microsecond,
		DefaultTTL: 400 * time.Millisecond,
	})
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Stop(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	res := EdgeName(srv.Graph().Edges()[0])
	g, err := srv.Acquire(ctx, []string{res}, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Keep renewing past the original TTL; the lease must stay live.
	for i := 0; i < 4; i++ {
		time.Sleep(250 * time.Millisecond)
		if _, err := srv.Renew(g.SessionID, 0); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if srv.ActiveLeases() != 1 {
		t.Fatalf("lease expired despite renewals")
	}
	if err := srv.Release(g.SessionID); err != nil {
		t.Fatalf("release after renewals: %v", err)
	}

	// A lease left unrenewed past its TTL is expired, and renewing it
	// then reports ErrNotFound.
	g2, err := srv.Acquire(ctx, []string{res}, 300*time.Millisecond)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	waitFor(t, ctx, 5*time.Second, "TTL expiry", func() (bool, string) {
		return srv.ActiveLeases() == 0, fmt.Sprintf("leases=%d", srv.ActiveLeases())
	})
	if _, err := srv.Renew(g2.SessionID, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renew of expired lease: got %v want ErrNotFound", err)
	}
}
