package lockservice

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcdp/internal/graph"
)

// shadowLedger is the e2e safety oracle: clients record every grant and
// release they observe, and any overlapping ownership of one resource
// is a mutual-exclusion violation.
type shadowLedger struct {
	mu     sync.Mutex
	owner  map[string]string // resource -> session ID currently holding it
	faults []string
}

func newShadowLedger() *shadowLedger {
	return &shadowLedger{owner: make(map[string]string)}
}

func (l *shadowLedger) granted(resources []string, sessionID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range resources {
		if prev, held := l.owner[r]; held {
			l.faults = append(l.faults, fmt.Sprintf("resource %s granted to %s while held by %s", r, sessionID, prev))
			continue
		}
		l.owner[r] = sessionID
	}
}

func (l *shadowLedger) released(resources []string, sessionID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range resources {
		if l.owner[r] == sessionID {
			delete(l.owner, r)
		}
	}
}

func (l *shadowLedger) violations() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.faults...)
}

// TestEndToEndServiceSurvivesMaliciousCrash drives dinerd the way a
// deployment would: concurrent HTTP clients acquiring and releasing
// edge locks, then a malicious crash injected through the admin
// endpoint, then load restricted to workers at distance >= 2 from the
// victim. It asserts (a) no two clients ever hold the same lock, and
// (b) every far lock is still granted after the crash.
func TestEndToEndServiceSurvivesMaliciousCrash(t *testing.T) {
	g := DemoTopology() // 3x4 grid; victim 0 is a corner
	const victim = graph.ProcID(0)

	srv := NewServer(Config{
		Graph:     g,
		Seed:      7,
		TickEvery: 300 * time.Microsecond,
	})
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Stop(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ledger := newShadowLedger()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// acquireHold grabs one resource through the HTTP API, verifies it
	// against the ledger, holds briefly, and releases.
	acquireHold := func(c *Client, resource string, timeout time.Duration) (bool, error) {
		grant, err := c.Acquire(ctx, []string{resource}, timeout, 0)
		if err != nil {
			return false, err
		}
		ledger.granted(grant.Resources, grant.SessionID)
		time.Sleep(2 * time.Millisecond)
		ledger.released(grant.Resources, grant.SessionID)
		if err := c.Release(ctx, grant.SessionID); err != nil {
			return true, fmt.Errorf("release %s: %w", grant.SessionID, err)
		}
		return true, nil
	}

	allEdges := make([]string, 0, g.EdgeCount())
	for _, e := range g.Edges() {
		allEdges = append(allEdges, EdgeName(e))
	}

	// Phase 1: 8 clients hammer the whole edge set concurrently.
	var (
		wg       sync.WaitGroup
		grantsMu sync.Mutex
		grants   int
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			for i := 0; i < 12; i++ {
				res := allEdges[(w*5+i*3)%len(allEdges)]
				ok, err := acquireHold(c, res, 2*time.Second)
				if err != nil {
					var apiErr *APIError
					if errors.As(err, &apiErr) && apiErr.StatusCode == 408 {
						continue // contention timeout: acceptable, retry next loop
					}
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if ok {
					grantsMu.Lock()
					grants++
					grantsMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if grants < 50 {
		t.Fatalf("phase 1 completed only %d acquire/release cycles", grants)
	}

	// Quiesce: no leases, no queued sessions, before the fault lands.
	c := NewClient(ts.URL)
	waitFor(t, ctx, 5*time.Second, "quiescence", func() (bool, string) {
		rep, err := c.Status(ctx)
		if err != nil {
			return false, err.Error()
		}
		return rep.ActiveLeases == 0 && rep.QueueDepth == 0,
			fmt.Sprintf("leases=%d queue=%d", rep.ActiveLeases, rep.QueueDepth)
	})

	// Inject a malicious crash: 20 garbage steps, then halt.
	if err := c.Crash(ctx, int(victim), 20); err != nil {
		t.Fatalf("crash injection: %v", err)
	}
	waitFor(t, ctx, 5*time.Second, "victim halt", func() (bool, string) {
		rep, err := c.Status(ctx)
		if err != nil {
			return false, err.Error()
		}
		for _, n := range rep.Nodes {
			if n.ID == int(victim) {
				return n.Dead, n.State
			}
		}
		return false, "victim missing from status"
	})

	// Phase 2: load only the far edges — both endpoints at distance >= 2
	// from the victim. The paper's failure locality is 2, and nearer
	// workers have no demand, so none of these may starve.
	var farEdges []string
	for _, e := range g.Edges() {
		if g.Dist(e.A, victim) >= 2 && g.Dist(e.B, victim) >= 2 {
			farEdges = append(farEdges, EdgeName(e))
		}
	}
	if len(farEdges) < 8 {
		t.Fatalf("only %d far edges on the demo grid; topology assumption broken", len(farEdges))
	}
	for _, res := range farEdges {
		wg.Add(1)
		go func(res string) {
			defer wg.Done()
			c := NewClient(ts.URL)
			deadline := time.Now().Add(25 * time.Second)
			for {
				ok, err := acquireHold(c, res, 1500*time.Millisecond)
				if ok && err == nil {
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("far lock %s never granted after the crash (last err: %v)", res, err)
					return
				}
			}
		}(res)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Phase 3: revive the victim with garbage state through the admin
	// API. Stabilization absorbs the arbitrary state, the node rejoins,
	// and locks incident to it are granted again.
	if _, err := c.Restart(ctx, int(victim), true); err != nil {
		t.Fatalf("restart injection: %v", err)
	}
	waitFor(t, ctx, 5*time.Second, "victim revival", func() (bool, string) {
		rep, err := c.Status(ctx)
		if err != nil {
			return false, err.Error()
		}
		for _, n := range rep.Nodes {
			if n.ID == int(victim) {
				return !n.Dead && n.Incarnation > 0, fmt.Sprintf("dead=%v inc=%d", n.Dead, n.Incarnation)
			}
		}
		return false, "victim missing from status"
	})
	var victimEdges []string
	for _, e := range g.Edges() {
		if e.A == victim || e.B == victim {
			victimEdges = append(victimEdges, EdgeName(e))
		}
	}
	for _, res := range victimEdges {
		wg.Add(1)
		go func(res string) {
			defer wg.Done()
			c := NewClient(ts.URL)
			deadline := time.Now().Add(25 * time.Second)
			for {
				ok, err := acquireHold(c, res, 1500*time.Millisecond)
				if ok && err == nil {
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("victim-incident lock %s never granted after revival (last err: %v)", res, err)
					return
				}
			}
		}(res)
	}
	wg.Wait()

	if v := ledger.violations(); len(v) > 0 {
		t.Fatalf("mutual exclusion violated:\n%s", strings.Join(v, "\n"))
	}
}

// waitFor polls cond until it reports true or the budget elapses.
func waitFor(t *testing.T, ctx context.Context, budget time.Duration, what string, cond func() (bool, string)) {
	t.Helper()
	deadline := time.Now().Add(budget)
	detail := ""
	for time.Now().Before(deadline) && ctx.Err() == nil {
		var ok bool
		ok, detail = cond()
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (%s)", what, detail)
}
