package lockservice

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcdp/internal/control"
	"mcdp/internal/shard"
	"mcdp/internal/stats"
)

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Shards is the number of independent arbiter shards (default 1).
	Shards int
	// Vnodes is the ring's virtual-node count per shard (default
	// shard.DefaultVnodes).
	Vnodes int
	// Base is the per-shard server config template. Each shard gets a
	// copy with ShardID set to its index and Seed offset by it, so the
	// shards' msgpass substrates draw distinct randomness streams.
	// Base.History, when set, taps shard 0 only — the history checker
	// judges one arbiter at a time.
	Base Config
	// PrepareTTL bounds how long a cross-shard span may hold an early
	// sub-lease before the whole span commits. Every prepare is
	// refreshed back to this budget after each downstream sub-acquire,
	// so it only needs to cover ONE shard's wait plus slack — not the
	// span's total latency. Default: Base.DefaultTimeout + 1s.
	PrepareTTL time.Duration
	// Replicas is the number of hot standbys per shard (default 0: no
	// replication, failure of a shard's server is failure of the
	// shard). With replicas, every shard's lease-table deltas stream to
	// its standbys, and the router's shard supervisor promotes the
	// freshest standby when the primary misses health checks.
	Replicas int
	// Failover tunes detection and promotion when Replicas > 0.
	Failover FailoverConfig
	// Rebalance, when set, closes the hot-key feedback loop: the router
	// feeds every grant into per-shard control sensors and runs the
	// controller periodically, migrating hot keys between shards under
	// the generation protocol. Nil (the default) disables sensing and
	// the loop entirely — the grant path pays nothing.
	Rebalance *control.Config
	// MigrationDrain bounds how long a key migration waits for the
	// source shard's live leases on the key to release or expire before
	// aborting. Default: Base.DefaultTTL + 500ms.
	MigrationDrain time.Duration
}

// RouterMetrics counts the router's own routing decisions; per-shard
// service metrics live on each shard's Server.
type RouterMetrics struct {
	WrongShardRejections atomic.Int64
	// SpanAcquires counts acquires whose resource set spanned shards
	// and entered the prepare/commit protocol; single-shard sets take
	// the direct fast path and are not counted here.
	SpanAcquires atomic.Int64
	// SpanCommits counts spans whose every sub-lease was promoted to
	// the client's TTL atomically.
	SpanCommits atomic.Int64
	// SpanRollbacks counts spans (or span renewals) that released early
	// sub-leases after a sub-acquire failure, a lost prepare, or a
	// fenced sub-lease.
	SpanRollbacks atomic.Int64
	// ShardRequests counts acquire requests routed to each shard.
	ShardRequests []atomic.Int64
	// Failovers counts completed standby promotions across all shards.
	Failovers atomic.Int64
	// LeaderlessRejections counts requests bounced with 503+Retry-After
	// while a shard had no serving primary.
	LeaderlessRejections atomic.Int64
	// Rebalances counts committed key migrations (override installed
	// after a clean drain); RebalancesAborted counts migrations that
	// fenced a key but timed out waiting for its leases to drain and
	// rolled the fence back.
	Rebalances        atomic.Int64
	RebalancesAborted atomic.Int64
	// MigrationFences counts acquires bounced (409) because a requested
	// key was fenced by an in-flight migration or had moved between
	// placement resolution and grant.
	MigrationFences atomic.Int64

	// PromotionHist observes promotion latency (decision to serving) in
	// seconds; promMu/promotions keep the raw durations so the bench
	// harness can report an exact p99 MTTR, capped to keep long chaos
	// runs bounded.
	PromotionHist *stats.LatencyHistogram
	promMu        sync.Mutex      //lint:order rank lockservice 60
	promotions    []time.Duration // guarded by promMu
}

// maxPromotionSamples bounds the raw promotion-duration buffer.
const maxPromotionSamples = 4096

// observePromotion records one promotion's latency.
func (m *RouterMetrics) observePromotion(d time.Duration) {
	m.PromotionHist.Observe(d.Seconds())
	m.promMu.Lock()
	if len(m.promotions) < maxPromotionSamples {
		m.promotions = append(m.promotions, d)
	}
	m.promMu.Unlock()
}

// PromotionDurations returns the raw recorded promotion latencies.
func (m *RouterMetrics) PromotionDurations() []time.Duration {
	m.promMu.Lock()
	defer m.promMu.Unlock()
	return append([]time.Duration(nil), m.promotions...)
}

// Router fronts N independent arbiter shards with a consistent-hash
// ring: each resource name hashes to one shard, whose diners core
// arbitrates it with no coordination with the others. A resource set
// that lands on one shard acquires directly there; a set that spans
// shards goes through the span protocol — per-shard sub-sessions
// acquired in ascending shard order (a deterministic total order, so
// two spans contending for overlapping shards can never deadlock),
// early grants held under a TTL-fenced prepare lease, then every
// sub-lease promoted to the client's TTL at commit or released at
// rollback. A client that resolved placement under a stale ring
// generation is bounced with 409 so it re-resolves before retrying.
//
// Ring membership changes (RingLeave/RingJoin) redirect new placements
// only: leases already granted by a departing shard stay valid on that
// shard until released or expired, and the session-ID shard prefix
// keeps their releases routable throughout.
type Router struct {
	cfg     RouterConfig
	sets    []*replicaSet
	fo      FailoverConfig
	metrics *RouterMetrics

	// ctl is the hot-key feedback controller (nil unless
	// RouterConfig.Rebalance is set); advice caches its latest derived
	// tuning for the 429 Retry-After hint.
	ctl    *control.Controller
	advice atomic.Pointer[control.Advice]

	done chan struct{}
	wg   sync.WaitGroup

	mu          sync.Mutex            //lint:order rank lockservice 10
	ring        *shard.Ring           // guarded by mu
	migrating   map[string]*migration // guarded by mu
	overrideGen uint64                // guarded by mu

	// gen mirrors ring.Generation(), published by pushRingGen after
	// every ring mutation, so hot-path generation reads (the acquire
	// pre-check and post-grant check) pay one atomic load instead of
	// taking mu.
	gen atomic.Uint64
}

// migration is one in-flight key move: from fence to override install
// (or abort), acquires naming key are bounced with 409 so the source
// shard's leases on it can drain. deadline bounds the fence even if
// the migrating goroutine dies mid-drain — routing treats an expired
// entry as absent, so a wedged migration cannot fence a key forever.
type migration struct {
	key      string
	src, dst int
	deadline time.Time
}

// NewRouter builds a router and its shard servers — with
// cfg.Replicas > 0, each shard gets that many hot standbys wired into
// a replica set. No goroutines start until Start.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	r := &Router{
		cfg:       cfg,
		fo:        cfg.Failover.withDefaults(),
		metrics:   &RouterMetrics{ShardRequests: make([]atomic.Int64, cfg.Shards), PromotionHist: stats.NewLatencyHistogram(stats.DefaultLatencyBounds())},
		ring:      shard.New(uint64(cfg.Base.Seed), cfg.Vnodes),
		migrating: make(map[string]*migration),
		done:      make(chan struct{}),
	}
	if cfg.Rebalance != nil {
		cc := *cfg.Rebalance
		cc.Shards = cfg.Shards
		r.ctl = control.New(cc)
	}
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.Base
		scfg.ShardID = i
		scfg.Seed = cfg.Base.Seed + int64(i)
		if i > 0 {
			scfg.History = nil
		}
		primary := NewServer(scfg)
		var standbys []*Server
		for j := 0; j < cfg.Replicas; j++ {
			sbcfg := scfg
			// Standbys keep the shard ID (session prefixes must stay
			// routable after promotion) but draw distinct substrate
			// randomness, and never tap the history checker — their
			// arbiter is idle until promoted.
			sbcfg.Seed = scfg.Seed + int64(1000*(j+1))
			sbcfg.History = nil
			standbys = append(standbys, NewServer(sbcfg))
		}
		r.sets = append(r.sets, newReplicaSet(i, primary, standbys,
			r.fo.AckTimeout, r.fo.StaleAfter, r.fo.CheckEvery))
		if err := r.ring.Add(i); err != nil {
			panic(err) // fresh ring, dense ids: unreachable
		}
	}
	r.pushRingGen()
	return r
}

// pushRingGen publishes the current ring generation to every member
// server of every shard (standbys included, so a freshly promoted
// primary already reports the right epoch).
//
// requires mu
func (r *Router) pushRingGen() {
	gen := r.ring.Generation()
	r.gen.Store(gen)
	for _, set := range r.sets {
		for _, s := range set.servers() {
			s.SetRingGen(gen)
		}
	}
}

// Start starts every member server of every shard, plus the shard
// supervisor when replicas are configured.
func (r *Router) Start() {
	for _, set := range r.sets {
		for _, s := range set.servers() {
			s.Start()
		}
	}
	if r.cfg.Replicas > 0 {
		r.wg.Add(1)
		go r.superviseShards()
	}
	if r.ctl != nil {
		r.wg.Add(1)
		go r.rebalanceLoop()
	}
}

// Stop halts the shard supervisor, tears down replication streams, and
// drains every member server concurrently under the shared context.
func (r *Router) Stop(ctx context.Context) {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
	r.wg.Wait()
	var wg sync.WaitGroup
	for _, set := range r.sets {
		set.stop()
		for _, s := range set.servers() {
			wg.Add(1)
			go func(s *Server) {
				defer wg.Done()
				s.Stop(ctx)
			}(s)
		}
	}
	wg.Wait()
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.sets) }

// Shard returns shard i's currently serving primary (tests and the
// bench harness); after a failover this is the promoted standby.
func (r *Router) Shard(i int) *Server { return r.sets[i].Primary() }

// ShardInfo reports shard i's failover-facing state.
type ShardInfo struct {
	Shard       int           `json:"shard"`
	Incarnation uint64        `json:"incarnation"`
	Standbys    int           `json:"standbys"`
	Halted      bool          `json:"halted"`
	Lag         uint64        `json:"replication_lag"`
	Hold        time.Duration `json:"-"`
}

// ShardServers returns every server shard i has ever owned — the
// current primary, live standbys, and deposed ex-primaries. The chaos
// harness sweeps it so post-run exclusion verdicts cover servers that
// granted leases before being fenced out, not just the survivor.
func (r *Router) ShardServers(i int) []*Server { return r.sets[i].servers() }

// ShardInfo snapshots shard i's role state (admin surface and tests).
func (r *Router) ShardInfo(i int) ShardInfo {
	set := r.sets[i]
	return ShardInfo{
		Shard:       i,
		Incarnation: set.incarnation(),
		Standbys:    set.standbyCount(),
		Halted:      set.Primary().Halted(),
		Lag:         set.maxLag(),
		Hold:        set.holdRemaining(),
	}
}

// Metrics returns the router's routing counters.
func (r *Router) Metrics() *RouterMetrics { return r.metrics }

// RingInfo describes the ring so clients can replicate placement
// locally: a shard.Ring built from Seed/Vnodes with Members added in
// ascending order reproduces the router's Lookup for every key at this
// Generation.
type RingInfo struct {
	Seed       uint64 `json:"seed"`
	Vnodes     int    `json:"vnodes"`
	Generation uint64 `json:"generation"`
	Shards     int    `json:"shards"`
	Members    []int  `json:"members"`
	// Overrides is the key-level placement override table the
	// rebalancing controller installs; a replica rebuilding the ring
	// must apply it (shard.Ring.SetOverrides) or hot keys resolve to
	// their stale hash homes.
	Overrides map[string]int `json:"overrides,omitempty"`
}

// RingInfo snapshots the current ring.
func (r *Router) RingInfo() RingInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingInfo{
		Seed:       r.ring.Seed(),
		Vnodes:     r.ring.Vnodes(),
		Generation: r.ring.Generation(),
		Shards:     len(r.sets),
		Members:    r.ring.Members(),
		Overrides:  r.ring.Overrides(),
	}
}

// RingLeave removes shard s from the ring: new placements avoid it,
// its live leases drain in place. The shard's server keeps running so
// those leases stay releasable.
func (r *Router) RingLeave(s int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring.Size() <= 1 {
		return errors.New("lockservice: cannot remove the last ring member")
	}
	if err := r.ring.Remove(s); err != nil {
		return err
	}
	r.pushRingGen()
	return nil
}

// RingJoin readmits shard s to the ring; its old keys return to it
// (virtual-node positions are stable).
func (r *Router) RingJoin(s int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s < 0 || s >= len(r.sets) {
		return fmt.Errorf("lockservice: shard %d out of range [0,%d)", s, len(r.sets))
	}
	if err := r.ring.Add(s); err != nil {
		return err
	}
	r.pushRingGen()
	return nil
}

// fencedLocked reports whether res is fenced by an in-flight key
// migration: new placements for it are refused (409) until the source
// shard's leases drain and the override lands, or the fence's deadline
// expires (the wedged-migration escape hatch).
//
// requires mu
func (r *Router) fencedLocked(res string, now time.Time) *migration {
	m, ok := r.migrating[res]
	if !ok || now.After(m.deadline) {
		return nil
	}
	return m
}

// shardFor resolves a resource set to its owning shard. Every resource
// must hash to the same shard; a spanning set is ErrCrossShard, and a
// resource fenced by an in-flight migration is ErrWrongShard (the
// client re-resolves and retries once the key lands).
func (r *Router) shardFor(resources []string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(resources) == 0 {
		return 0, fmt.Errorf("%w: empty resource set", ErrUnmappable)
	}
	now := time.Now()
	home := -1
	for _, res := range resources {
		if m := r.fencedLocked(res, now); m != nil {
			r.metrics.MigrationFences.Add(1)
			return 0, fmt.Errorf("%w: key %q migrating shard %d -> %d", ErrWrongShard, res, m.src, m.dst)
		}
		s, ok := r.ring.Lookup(res)
		if !ok {
			return 0, ErrUnserviceable
		}
		if home == -1 {
			home = s
		} else if s != home {
			return 0, fmt.Errorf("%w: %q on shard %d, %q on shard %d",
				ErrCrossShard, resources[0], home, res, s)
		}
	}
	return home, nil
}

// generation returns the current ring generation — the cache
// pushRingGen publishes, so readers pay one atomic load and the grant
// path never takes mu just to read the epoch.
func (r *Router) generation() uint64 {
	return r.gen.Load()
}

// spanPart is one shard's slice of a (possibly spanning) resource set.
type spanPart struct {
	shard int
	keys  []string
}

// partsFor decomposes a resource set by ring placement under one ring
// snapshot, returning parts in ascending shard order (the canonical
// acquisition order); within a part, keys keep request order.
//
//lint:order sorted span shard
func (r *Router) partsFor(resources []string) ([]spanPart, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(resources) == 0 {
		return nil, fmt.Errorf("%w: empty resource set", ErrUnmappable)
	}
	now := time.Now()
	var parts []spanPart
	for _, res := range resources {
		if m := r.fencedLocked(res, now); m != nil {
			r.metrics.MigrationFences.Add(1)
			return nil, fmt.Errorf("%w: key %q migrating shard %d -> %d", ErrWrongShard, res, m.src, m.dst)
		}
		s, ok := r.ring.Lookup(res)
		if !ok {
			return nil, ErrUnserviceable
		}
		i := 0
		for i < len(parts) && parts[i].shard != s {
			i++
		}
		if i == len(parts) {
			parts = append(parts, spanPart{shard: s})
		}
		parts[i].keys = append(parts[i].keys, res)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].shard < parts[j].shard })
	return parts, nil
}

// prepareBudget resolves the span prepare-lease TTL.
func (r *Router) prepareBudget() time.Duration {
	if r.cfg.PrepareTTL > 0 {
		return r.cfg.PrepareTTL
	}
	// NewServer defaulted every shard's DefaultTimeout, so this is
	// always positive: one shard's wait budget plus scheduling slack.
	return r.sets[0].Primary().cfg.DefaultTimeout + time.Second
}

// Acquire routes the resource set by ring placement. A set owned by
// one shard acquires directly there (no prepare lease, one round
// trip); a spanning set runs the span protocol. ringGen, when
// non-zero, asserts the generation the caller resolved placement
// under; a mismatch is ErrWrongShard.
//
//lint:lease acquire
func (r *Router) Acquire(ctx context.Context, resources []string, ttl time.Duration, ringGen uint64) (*Grant, error) {
	cur := r.generation()
	if ringGen != 0 && ringGen != cur {
		r.metrics.WrongShardRejections.Add(1)
		return nil, fmt.Errorf("%w: client generation %d, ring generation %d", ErrWrongShard, ringGen, cur)
	}
	parts, err := r.partsFor(resources)
	if err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		home := parts[0].shard
		r.metrics.ShardRequests[home].Add(1)
		g, err := r.sets[home].acquire(ctx, resources, ttl)
		if errors.Is(err, ErrLeaderless) {
			r.metrics.LeaderlessRejections.Add(1)
		}
		// Migration fence, second half: a key migration that started
		// after partsFor resolved placement bumped the generation before
		// waiting for the source's leases to drain. A grant that raced
		// that fence must not reach the client — release it and bounce,
		// exactly as if the client had routed under a stale generation.
		// Steady state (generation unchanged) pays one atomic load.
		if err == nil && r.generation() != cur && !r.stillPlaced(resources, home) {
			_ = r.sets[home].release(g.SessionID)
			r.metrics.MigrationFences.Add(1)
			return nil, fmt.Errorf("%w: placement of %q moved mid-acquire", ErrWrongShard, resources[0])
		}
		if err == nil && r.ctl != nil {
			r.ctl.Observe(home, g.Resources, g.Wait)
		}
		return g, err
	}
	return r.acquireSpan(ctx, resources, parts, ttl, cur)
}

// stillPlaced reports whether every resource still resolves to home
// and none is fenced by an in-flight migration — the post-grant check
// that makes a grant racing a migration fence invisible to clients.
func (r *Router) stillPlaced(resources []string, home int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	for _, res := range resources {
		if r.fencedLocked(res, now) != nil {
			return false
		}
		if s, ok := r.ring.Lookup(res); !ok || s != home {
			return false
		}
	}
	return true
}

// partsStillPlaced is stillPlaced for a span's decomposition.
func (r *Router) partsStillPlaced(parts []spanPart) bool {
	for _, pt := range parts {
		if !r.stillPlaced(pt.keys, pt.shard) {
			return false
		}
	}
	return true
}

// acquireSpan acquires a shard-spanning resource set all-or-nothing:
// sub-sessions in ascending shard order under prepare leases, then a
// commit pass promoting every prepare to the client's TTL. Any
// sub-acquire failure or lost prepare rolls every early grant back, so
// no client ever observes a partially committed set. After each
// sub-acquire, every earlier prepare is refreshed back to the full
// prepare budget — a prepare therefore only has to survive ONE shard's
// wait between refreshes, regardless of how many shards the span
// touches. A prepare the janitor or a node fence revoked mid-protocol
// surfaces as ErrSpanAborted (409, retryable: rollback left no
// residue), as does a key migration that moved any part's placement
// between resolution and commit — checked against gen0, the generation
// the parts were resolved under.
func (r *Router) acquireSpan(ctx context.Context, resources []string, parts []spanPart, ttl time.Duration, gen0 uint64) (*Grant, error) {
	// The protocol's deadlock freedom rests on every span walking its
	// shards in the same order. partsFor already sorts, but the proof
	// should not depend on a contract a caller could break: re-assert
	// ascending shard order locally (a handful of elements, already
	// sorted — effectively free).
	sort.Slice(parts, func(i, j int) bool { return parts[i].shard < parts[j].shard })
	r.metrics.SpanAcquires.Add(1)
	start := time.Now()
	prep := r.prepareBudget()
	subs := make([]*Grant, 0, len(parts))
	rollback := func() {
		if len(subs) == 0 {
			return
		}
		for i := len(subs) - 1; i >= 0; i-- {
			_ = r.sets[parts[i].shard].release(subs[i].SessionID)
			r.sets[parts[i].shard].noteSpan(ReplOpSpanRollback, subs[i].SessionID)
		}
		r.metrics.SpanRollbacks.Add(1)
	}
	for _, pt := range parts {
		r.metrics.ShardRequests[pt.shard].Add(1)
		//lint:order acquire span pt.shard
		g, err := r.sets[pt.shard].acquire(ctx, pt.keys, prep)
		if err != nil {
			if errors.Is(err, ErrLeaderless) {
				r.metrics.LeaderlessRejections.Add(1)
			}
			rollback()
			return nil, err
		}
		subs = append(subs, g)
		// The sub-lease is now an early grant under a prepare TTL; tell
		// the shard's standbys so a promotion mid-span knows this lease
		// belongs to an unresolved span.
		r.sets[pt.shard].noteSpan(ReplOpSpanPrepare, g.SessionID)
		for i := 0; i < len(subs)-1; i++ {
			if _, err := r.sets[parts[i].shard].renew(subs[i].SessionID, prep); err != nil {
				rollback()
				return nil, fmt.Errorf("%w: shard %d prepare lost mid-span: %v", ErrSpanAborted, parts[i].shard, err)
			}
		}
	}
	// Migration fence for spans: if the ring epoch moved while the
	// prepares were collecting, re-validate every part's placement
	// before promoting anything to the client TTL. A span must commit
	// entirely inside one placement epoch or not at all — otherwise a
	// migrated key could be granted here under its old home while the
	// override already routes new acquires to its new one.
	if r.generation() != gen0 && !r.partsStillPlaced(parts) {
		rollback()
		r.metrics.MigrationFences.Add(1)
		return nil, fmt.Errorf("%w: placement moved mid-span (ring generation %d -> %d)", ErrSpanAborted, gen0, r.generation())
	}
	for i := range subs {
		if _, err := r.sets[parts[i].shard].renew(subs[i].SessionID, ttl); err != nil {
			rollback()
			return nil, fmt.Errorf("%w: shard %d prepare lost at commit: %v", ErrSpanAborted, parts[i].shard, err)
		}
		r.sets[parts[i].shard].noteSpan(ReplOpSpanCommit, subs[i].SessionID)
	}
	if r.ctl != nil {
		for _, pt := range parts {
			r.ctl.Observe(pt.shard, pt.keys, time.Since(start))
		}
	}
	r.metrics.SpanCommits.Add(1)
	ids := make([]string, len(subs))
	for i, g := range subs {
		ids[i] = g.SessionID
	}
	return &Grant{
		SessionID: spanPrefix + strings.Join(ids, spanSep),
		Node:      subs[0].Node,
		Resources: append([]string(nil), resources...),
		Wait:      time.Since(start),
	}, nil
}

// Span session IDs concatenate the per-shard sub-lease IDs:
// "span:k0:s00000001-2+k3:s00000004-1". Sub IDs contain ':' but never
// '+', so the separator is unambiguous; with the codec's 64-resource
// bound the result stays far under the wire's 4096-byte session limit.
const (
	spanPrefix = "span:"
	spanSep    = "+"
)

// spanSubIDs splits a span session ID into its sub-lease IDs.
func spanSubIDs(sessionID string) ([]string, bool) {
	rest, ok := strings.CutPrefix(sessionID, spanPrefix)
	if !ok || rest == "" {
		return nil, false
	}
	return strings.Split(rest, spanSep), true
}

// Release routes a release by the session ID's shard prefix. A span
// session releases every sub-lease; it succeeds if any sub-lease was
// still live (sub-leases already expired or fenced are at-most-once
// no-ops, matching the single-session release contract) and reports
// ErrNotFound only when the whole span was already gone.
//
//lint:lease release
func (r *Router) Release(sessionID string) error {
	if ids, ok := spanSubIDs(sessionID); ok {
		released := false
		for _, id := range ids {
			if r.releaseSub(id) == nil {
				released = true
			}
		}
		if !released {
			return ErrNotFound
		}
		return nil
	}
	return r.releaseSub(sessionID)
}

func (r *Router) releaseSub(sessionID string) error {
	s, ok := sessionShard(sessionID)
	if !ok || s >= len(r.sets) {
		return ErrNotFound
	}
	return r.sets[s].release(sessionID)
}

// Renew routes a lease renewal by the session ID's shard prefix. A
// span session renews every sub-lease and reports the smallest granted
// lifetime; if any sub-lease is gone (expired or fenced), the span's
// atomicity is already broken, so the survivors are released and the
// renewal fails — the client holds all of its keys or none.
//
//lint:lease renew
func (r *Router) Renew(sessionID string, ttl time.Duration) (time.Duration, error) {
	if ids, ok := spanSubIDs(sessionID); ok {
		granted := time.Duration(0)
		for i, id := range ids {
			g, err := r.renewSub(id, ttl)
			if err != nil {
				for _, other := range ids {
					if other != id {
						_ = r.releaseSub(other)
					}
				}
				r.metrics.SpanRollbacks.Add(1)
				return 0, fmt.Errorf("%w: span sub-lease %s lost: %v", ErrNotFound, id, err)
			}
			if i == 0 || g < granted {
				granted = g
			}
		}
		return granted, nil
	}
	return r.renewSub(sessionID, ttl)
}

func (r *Router) renewSub(sessionID string, ttl time.Duration) (time.Duration, error) {
	s, ok := sessionShard(sessionID)
	if !ok || s >= len(r.sets) {
		return 0, ErrNotFound
	}
	return r.sets[s].renew(sessionID, ttl)
}

// sessionShard parses the "k<shard>:" session-ID prefix.
func sessionShard(sessionID string) (int, bool) {
	pfx, _, ok := strings.Cut(sessionID, ":")
	if !ok || !strings.HasPrefix(pfx, "k") {
		return 0, false
	}
	s, err := strconv.Atoi(pfx[1:])
	if err != nil || s < 0 {
		return 0, false
	}
	return s, true
}

// Status aggregates every shard's report: summed service totals at the
// top level, full per-shard reports under Reports. Node rows carry
// their shard, so IDs stay meaningful after concatenation.
func (r *Router) Status() StatusReport {
	agg := StatusReport{
		Shards:  len(r.sets),
		ShardID: -1, // the aggregate speaks for no single shard
		RingGen: r.generation(),
	}
	for _, set := range r.sets {
		s := set.Primary()
		rep := s.Status()
		rep.Role = "primary"
		if s.Halted() {
			rep.Role = "halted"
		}
		rep.ShardIncarnation = set.incarnation()
		rep.Standbys = set.standbyCount()
		rep.ReplicationLag = int64(set.maxLag())
		if agg.Topology == "" {
			agg.Topology = fmt.Sprintf("%d x %s", len(r.sets), rep.Topology)
			// Every shard arbitrates the same catalog (one conflict graph
			// per shard, identical names); publish it once.
			agg.Edges = rep.Edges
		}
		agg.Workers += rep.Workers
		agg.Locks += rep.Locks
		agg.ActiveLeases += rep.ActiveLeases
		agg.QueueDepth += rep.QueueDepth
		agg.Grants += rep.Grants
		if rep.UptimeMS > agg.UptimeMS {
			agg.UptimeMS = rep.UptimeMS
		}
		agg.Draining = agg.Draining || rep.Draining
		agg.Nodes = append(agg.Nodes, rep.Nodes...)
		agg.Reports = append(agg.Reports, rep)
	}
	if r.ctl != nil {
		cnt, gen := r.OverrideState()
		agg.Control = &ControlReport{Status: r.ctl.Snapshot(), OverrideCount: cnt, OverrideGen: gen}
	}
	return agg
}

// Handler returns the router's HTTP surface — the Server API plus the
// ring endpoints:
//
//	POST /v1/acquire     ring-routed acquire (409 on stale ring_gen)
//	POST /v1/release     release, routed by the session-ID shard prefix
//	GET  /v1/status      aggregated report with per-shard sub-reports
//	GET  /v1/ring        ring seed/vnodes/generation/members
//	GET  /metrics        merged Prometheus exposition across shards
//	POST /v1/admin/ring  ?op=leave|join&shard=S: ring membership
//	POST /v1/admin/failover  ?shard=S: kill the shard primary, await promotion
//	POST /v1/admin/migrate   ?key=K&to=S: fence/drain/commit one key move
//	POST /v1/admin/*     crash/restart/leave/join, fanned out by ?shard=S
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/acquire", r.handleAcquire)
	mux.HandleFunc("/v1/release", r.handleRelease)
	mux.HandleFunc("/v1/renew", r.handleRenew)
	mux.HandleFunc("/v1/admin/failover", r.handleFailover)
	mux.HandleFunc("/v1/admin/migrate", r.handleMigrate)
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, r.Status())
	})
	mux.HandleFunc("/v1/ring", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, r.RingInfo())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/v1/admin/ring", r.handleRing)
	mux.HandleFunc("/v1/admin/", r.handleAdmin)
	return mux
}

func (r *Router) handleAcquire(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var body AcquireRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(body.Resources) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("resources must be non-empty"))
		return
	}
	ctx := req.Context()
	if body.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	grant, err := r.Acquire(ctx, body.Resources, time.Duration(body.TTLMS)*time.Millisecond, body.RingGen)
	if err != nil {
		code := statusFor(err)
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			// Leaderless shard: the remaining blackout is known
			// server-side, so tell the client exactly how long to back
			// off (fractional seconds).
			w.Header().Set("Retry-After", strconv.FormatFloat(ra.After.Seconds(), 'f', 3, 64))
		}
		switch code {
		case http.StatusTooManyRequests:
			w.Header().Set("Retry-After", r.retryAfterHint())
		case http.StatusConflict:
			// Ship the live generation so the client can retry without a
			// /v1/ring round-trip.
			writeJSON(w, code, ErrorResponse{Error: err.Error(), RingGen: r.generation()})
			return
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, AcquireResponse{
		SessionID: grant.SessionID,
		Node:      int(grant.Node),
		Resources: grant.Resources,
		WaitMS:    float64(grant.Wait.Microseconds()) / 1000,
	})
}

func (r *Router) handleRelease(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var body ReleaseRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := r.Release(body.SessionID); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{Released: true})
}

func (r *Router) handleRenew(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var body RenewRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ttl, err := r.Renew(body.SessionID, time.Duration(body.TTLMS)*time.Millisecond)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RenewResponse{Renewed: true, TTLMS: ttl.Milliseconds()})
}

func (r *Router) handleRing(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	s, err := strconv.Atoi(req.URL.Query().Get("shard"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("shard query parameter required"))
		return
	}
	switch req.URL.Query().Get("op") {
	case "leave":
		err = r.RingLeave(s)
	case "join":
		err = r.RingJoin(s)
	default:
		writeErr(w, http.StatusBadRequest, errors.New("op must be leave or join"))
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, r.RingInfo())
}

// handleMigrate is the manual key-migration switch: POST
// /v1/admin/migrate?key=K&to=S runs the same fence/drain/commit
// protocol the controller actuates, so operators (and the chaos
// harness) can move a key without waiting for the feedback loop.
func (r *Router) handleMigrate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	key := req.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, errors.New("key query parameter required"))
		return
	}
	to, err := strconv.Atoi(req.URL.Query().Get("to"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("to query parameter must be a shard index"))
		return
	}
	if err := r.MigrateKey(key, to); err != nil {
		// Request defects (unknown shard index) are the client's to fix;
		// everything else — already migrating, drain timeout, leaderless
		// destination — is migration state worth retrying, so 409.
		code := http.StatusConflict
		if errors.Is(err, errMigrateInvalid) {
			code = http.StatusBadRequest
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, r.RingInfo())
}

// handleAdmin fans the per-node admin endpoints out to one shard's own
// handler, selected by ?shard=S (default 0).
func (r *Router) handleAdmin(w http.ResponseWriter, req *http.Request) {
	s := 0
	if v := req.URL.Query().Get("shard"); v != "" {
		var err error
		if s, err = strconv.Atoi(v); err != nil || s < 0 || s >= len(r.sets) {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("shard must be in [0,%d)", len(r.sets)))
			return
		}
	}
	r.sets[s].adminHandler().ServeHTTP(w, req)
}

// handleFailover is the kill-primary admin switch: POST
// /v1/admin/failover?shard=S halts shard S's primary and waits for the
// supervisor to promote a standby, answering with the shard's new
// incarnation. It exists so the chaos harness exercises the real
// detection-and-promotion path over HTTP, not a test-only shortcut.
func (r *Router) handleFailover(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	s, err := strconv.Atoi(req.URL.Query().Get("shard"))
	if err != nil || s < 0 || s >= len(r.sets) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("shard must be in [0,%d)", len(r.sets)))
		return
	}
	timeout := 5 * time.Second
	if v := req.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			writeErr(w, http.StatusBadRequest, errors.New("timeout_ms must be a positive integer"))
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if err := r.Failover(s, timeout); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, r.ShardInfo(s))
}

// WriteMetrics merges every shard's exposition into one: samples with
// identical name and labels are summed (which aggregates the plain
// counters, gauges, and histogram buckets correctly), and node-labeled
// samples first gain a shard label so worker IDs that repeat across
// shards stay distinct. Router-level routing series are prepended.
func (r *Router) WriteMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP dinerd_router_ring_generation Consistent-hash ring generation.\n# TYPE dinerd_router_ring_generation gauge\ndinerd_router_ring_generation %d\n", r.generation())
	fmt.Fprintf(w, "# HELP dinerd_router_wrong_shard_rejections_total Acquires routed under a stale ring generation (409).\n# TYPE dinerd_router_wrong_shard_rejections_total counter\ndinerd_router_wrong_shard_rejections_total %d\n", r.metrics.WrongShardRejections.Load())
	fmt.Fprintf(w, "# HELP dinerd_span_acquires_total Cross-shard span acquires attempted.\n# TYPE dinerd_span_acquires_total counter\ndinerd_span_acquires_total %d\n", r.metrics.SpanAcquires.Load())
	fmt.Fprintf(w, "# HELP dinerd_span_commits_total Cross-shard spans committed atomically.\n# TYPE dinerd_span_commits_total counter\ndinerd_span_commits_total %d\n", r.metrics.SpanCommits.Load())
	fmt.Fprintf(w, "# HELP dinerd_span_rollback_total Cross-shard spans rolled back (sub-acquire failure, lost prepare, or fenced sub-lease).\n# TYPE dinerd_span_rollback_total counter\ndinerd_span_rollback_total %d\n", r.metrics.SpanRollbacks.Load())
	fmt.Fprintf(w, "# HELP dinerd_router_shard_requests_total Acquire requests routed per shard.\n# TYPE dinerd_router_shard_requests_total counter\n")
	for i := range r.metrics.ShardRequests {
		fmt.Fprintf(w, "dinerd_router_shard_requests_total{shard=%q} %d\n", strconv.Itoa(i), r.metrics.ShardRequests[i].Load())
	}
	fmt.Fprintf(w, "# HELP dinerd_failover_total Completed standby promotions across all shards.\n# TYPE dinerd_failover_total counter\ndinerd_failover_total %d\n", r.metrics.Failovers.Load())
	fmt.Fprintf(w, "# HELP dinerd_leaderless_rejections_total Requests bounced with 503+Retry-After while a shard was leaderless.\n# TYPE dinerd_leaderless_rejections_total counter\ndinerd_leaderless_rejections_total %d\n", r.metrics.LeaderlessRejections.Load())
	fmt.Fprintf(w, "# HELP dinerd_rebalance_total Key migrations committed (override installed after a clean drain).\n# TYPE dinerd_rebalance_total counter\ndinerd_rebalance_total %d\n", r.metrics.Rebalances.Load())
	fmt.Fprintf(w, "# HELP dinerd_rebalance_aborted_total Key migrations that fenced a key but aborted before the override landed.\n# TYPE dinerd_rebalance_aborted_total counter\ndinerd_rebalance_aborted_total %d\n", r.metrics.RebalancesAborted.Load())
	fmt.Fprintf(w, "# HELP dinerd_migration_fences_total Acquires bounced (409) by an in-flight key migration's fence.\n# TYPE dinerd_migration_fences_total counter\ndinerd_migration_fences_total %d\n", r.metrics.MigrationFences.Load())
	hot := 0.0
	if r.ctl != nil {
		hot = r.ctl.Snapshot().HotFraction
	}
	fmt.Fprintf(w, "# HELP dinerd_hotkey_fraction Hottest single key's share of total decayed grant load (0 when the controller is off).\n# TYPE dinerd_hotkey_fraction gauge\ndinerd_hotkey_fraction %s\n", strconv.FormatFloat(hot, 'g', -1, 64))
	writeHistogram(w, "dinerd_promotion_seconds", "Standby promotion latency: decision to serving.", r.metrics.PromotionHist)
	fmt.Fprintf(w, "# HELP dinerd_shard_role Shard role (1=primary serving, 0=halted/leaderless).\n# TYPE dinerd_shard_role gauge\n")
	for i, set := range r.sets {
		role := 1
		if !set.Primary().Healthy() {
			role = 0
		}
		fmt.Fprintf(w, "dinerd_shard_role{shard=%q} %d\n", strconv.Itoa(i), role)
	}
	fmt.Fprintf(w, "# HELP dinerd_shard_incarnation Primary incarnation per shard (bumped on every promotion).\n# TYPE dinerd_shard_incarnation gauge\n")
	for i, set := range r.sets {
		fmt.Fprintf(w, "dinerd_shard_incarnation{shard=%q} %d\n", strconv.Itoa(i), set.incarnation())
	}
	fmt.Fprintf(w, "# HELP dinerd_shard_replication_lag Widest standby lag per shard, in lease records.\n# TYPE dinerd_shard_replication_lag gauge\n")
	for i, set := range r.sets {
		fmt.Fprintf(w, "dinerd_shard_replication_lag{shard=%q} %d\n", strconv.Itoa(i), set.maxLag())
	}

	help := map[string]string{}
	typ := map[string]string{}
	sums := map[string]float64{}
	var order []string // first-seen sample keys, for stable output
	for i, set := range r.sets {
		var buf bytes.Buffer
		set.Primary().WriteMetrics(&buf)
		sc := bufio.NewScanner(&buf)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
				name, text, _ := strings.Cut(rest, " ")
				help[name] = text
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				name, t, _ := strings.Cut(rest, " ")
				typ[name] = t
				continue
			}
			key, val, ok := parseSample(line, i)
			if !ok {
				continue
			}
			if _, seen := sums[key]; !seen {
				order = append(order, key)
			}
			sums[key] += val
		}
	}
	emitted := map[string]bool{}
	for _, key := range order {
		name := key
		if j := strings.IndexByte(key, '{'); j >= 0 {
			name = key[:j]
		}
		if fam := familyOf(name, help); fam != "" && !emitted[fam] {
			emitted[fam] = true
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam, help[fam], fam, typ[fam])
		}
		fmt.Fprintf(w, "%s %s\n", key, strconv.FormatFloat(sums[key], 'g', -1, 64))
	}
}

// parseSample splits one exposition sample line into its merge key and
// value, injecting a shard label into node-labeled samples.
func parseSample(line string, shardID int) (key string, val float64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp <= 0 {
		return "", 0, false
	}
	key = line[:sp]
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		return "", 0, false
	}
	if strings.Contains(key, `{node=`) && strings.HasSuffix(key, "}") {
		key = fmt.Sprintf("%s,shard=%q}", key[:len(key)-1], strconv.Itoa(shardID))
	}
	return key, v, true
}

// familyOf resolves a sample name to its HELP/TYPE family, stripping
// the histogram sample suffixes.
func familyOf(name string, help map[string]string) string {
	if _, ok := help[name]; ok {
		return name
	}
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, sfx); ok {
			if _, ok := help[base]; ok {
				return base
			}
		}
	}
	return ""
}

// ShardKeys partitions a catalog of resource names by owning shard —
// the helper loadgen and the bench harness use to draw same-shard
// resource pairs.
func (r *Router) ShardKeys(names []string) map[int][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int][]string)
	for _, n := range names {
		if s, ok := r.ring.Lookup(n); ok {
			out[s] = append(out[s], n)
		}
	}
	for s := range out {
		sort.Strings(out[s])
	}
	return out
}
