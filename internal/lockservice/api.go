package lockservice

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"mcdp/internal/control"
	"mcdp/internal/graph"
	"mcdp/internal/msgpass"
)

// AcquireRequest is the body of POST /v1/acquire.
type AcquireRequest struct {
	// Resources are the lock names to acquire atomically.
	Resources []string `json:"resources"`
	// TimeoutMS optionally caps the wait for a grant (server clamps to
	// its configured maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TTLMS optionally overrides the lease time-to-live.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Client optionally identifies the requester (logging only).
	Client string `json:"client,omitempty"`
	// RingGen, when non-zero, is the ring generation the client routed
	// under; a Router rejects a stale generation with 409 so the client
	// re-resolves key placement before retrying.
	RingGen uint64 `json:"ring_gen,omitempty"`
}

// AcquireResponse is the body of a successful acquire.
type AcquireResponse struct {
	SessionID string   `json:"session_id"`
	Node      int      `json:"node"`
	Resources []string `json:"resources"`
	WaitMS    float64  `json:"wait_ms"`
}

// ReleaseRequest is the body of POST /v1/release.
type ReleaseRequest struct {
	SessionID string `json:"session_id"`
}

// ReleaseResponse is the body of a successful release.
type ReleaseResponse struct {
	Released bool `json:"released"`
}

// RenewRequest is the body of POST /v1/renew.
type RenewRequest struct {
	SessionID string `json:"session_id"`
	// TTLMS optionally overrides the lease time-to-live; 0 renews for
	// the server default.
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// RenewResponse is the body of a successful renew.
type RenewResponse struct {
	Renewed bool `json:"renewed"`
	// TTLMS is the granted lease lifetime from now.
	TTLMS int64 `json:"ttl_ms"`
}

// NodeStatus is one worker's row in GET /v1/status.
type NodeStatus struct {
	ID          int    `json:"id"`
	Shard       int    `json:"shard,omitempty"`
	State       string `json:"state"`
	Dead        bool   `json:"dead"`
	Departed    bool   `json:"departed,omitempty"`
	Depth       int    `json:"depth"`
	Events      int64  `json:"events"`
	Eats        int64  `json:"eats"`
	QueueDepth  int    `json:"queue_depth"`
	Incarnation int64  `json:"incarnation"`
}

// StatusReport is the body of GET /v1/status. A standalone server fills
// ShardID from its config and leaves Shards at zero; a Router answers
// with the same shape, Shards set to the shard count, RingGen to the
// current ring generation, and the per-shard reports under Reports.
type StatusReport struct {
	Topology     string       `json:"topology"`
	ShardID      int          `json:"shard_id"`
	Shards       int          `json:"shards,omitempty"`
	RingGen      uint64       `json:"ring_gen"`
	Workers      int          `json:"workers"`
	Locks        int          `json:"locks"`
	Edges        []string     `json:"edges"`
	Nodes        []NodeStatus `json:"nodes"`
	ActiveLeases int          `json:"active_leases"`
	QueueDepth   int          `json:"queue_depth"`
	Grants       int64        `json:"grants"`
	UptimeMS     int64        `json:"uptime_ms"`
	Draining     bool         `json:"draining"`
	// Failover fields, filled by a Router for per-shard reports:
	// Role is "primary" or "halted", ShardIncarnation counts promotions
	// (starts at 1), Standbys is the live hot-standby count, and
	// ReplicationLag is the widest standby lag in lease records.
	Role             string         `json:"role,omitempty"`
	ShardIncarnation uint64         `json:"incarnation,omitempty"`
	Standbys         int            `json:"standbys,omitempty"`
	ReplicationLag   int64          `json:"replication_lag,omitempty"`
	Reports          []StatusReport `json:"reports,omitempty"`
	// Control, filled by a Router with the rebalance loop running: the
	// controller's sensor snapshot (per-shard load and top-K keys),
	// derived tuning, and the override table version.
	Control *ControlReport `json:"control,omitempty"`
}

// ControlReport is the rebalance controller's /v1/status section.
type ControlReport struct {
	control.Status
	// OverrideCount is the number of keys pinned off their hash homes;
	// OverrideGen is the ring generation of the last override change —
	// the override table's version under the generation protocol.
	OverrideCount int    `json:"override_count"`
	OverrideGen   uint64 `json:"override_gen"`
}

// ErrorResponse is the body of every non-2xx response. RingGen rides
// along on 409 wrong-shard rejections so the client can refresh its
// cached generation without a /v1/ring round-trip.
type ErrorResponse struct {
	Error   string `json:"error"`
	RingGen uint64 `json:"ring_gen,omitempty"`
}

// CrashResponse is the body of a successful fault injection.
type CrashResponse struct {
	Node  int    `json:"node"`
	Steps int    `json:"steps"`
	Mode  string `json:"mode"`
}

// RestartResponse is the body of a successful node restart.
type RestartResponse struct {
	Node int `json:"node"`
	// Mode is "clean" or "arbitrary".
	Mode string `json:"mode"`
	// Fenced is how many leases homed at the node were revoked.
	Fenced int `json:"fenced"`
}

// Status assembles the current status report.
func (s *Server) Status() StatusReport {
	table := s.nw.Table()
	depths := s.arb.QueueDepths()
	rep := StatusReport{
		Topology: s.g.String(),
		ShardID:  s.cfg.ShardID,
		RingGen:  s.ringGen.Load(),
		Workers:  s.g.N(),
		Locks:    s.g.EdgeCount(),
		Grants:   s.metrics.Grants.Load(),
		UptimeMS: s.Uptime().Milliseconds(),
	}
	for _, e := range s.g.Edges() {
		rep.Edges = append(rep.Edges, EdgeName(e))
	}
	for p, snap := range table {
		st := snap.State.String()
		if !snap.State.Valid() {
			st = "?"
		}
		rep.Nodes = append(rep.Nodes, NodeStatus{
			ID: p, Shard: s.cfg.ShardID, State: st, Dead: snap.Dead,
			Departed: s.Departed(graph.ProcID(p)), Depth: snap.Depth,
			Events: snap.Events, Eats: snap.Eats, QueueDepth: depths[p],
			Incarnation: snap.Incarnation,
		})
		rep.QueueDepth += depths[p]
	}
	rep.ActiveLeases = s.ActiveLeases()
	s.mu.Lock()
	rep.Draining = s.draining
	s.mu.Unlock()
	return rep
}

// Handler returns dinerd's HTTP surface:
//
//	POST /v1/acquire      acquire a resource set (blocks until grant/timeout)
//	POST /v1/release      release a granted session
//	GET  /v1/status       topology, per-worker state, queues, leases
//	GET  /metrics         Prometheus text exposition
//	POST /v1/admin/crash  inject a malicious (or benign) crash: ?node=N&steps=K
//	POST /v1/admin/restart  revive a worker: ?node=N&mode=clean|garbage
//	POST /v1/admin/leave  retire a worker from service: ?node=N
//	POST /v1/admin/join   readmit a departed worker: ?node=N
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/acquire", s.handleAcquire)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/renew", s.handleRenew)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/admin/crash", s.handleCrash)
	mux.HandleFunc("/v1/admin/restart", s.handleRestart)
	mux.HandleFunc("/v1/admin/leave", s.handleLeave)
	mux.HandleFunc("/v1/admin/join", s.handleJoin)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// statusFor maps the server's sentinel errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnmappable), errors.Is(err, ErrCrossShard):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrWrongShard), errors.Is(err, ErrSpanAborted), errors.Is(err, ErrDeposed):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrTimeout):
		return http.StatusRequestTimeout
	case errors.Is(err, ErrDraining), errors.Is(err, ErrUnserviceable),
		errors.Is(err, ErrHalted), errors.Is(err, ErrLeaderless):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req AcquireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Resources) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("resources must be non-empty"))
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	grant, err := s.Acquire(ctx, req.Resources, time.Duration(req.TTLMS)*time.Millisecond)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, AcquireResponse{
		SessionID: grant.SessionID,
		Node:      int(grant.Node),
		Resources: grant.Resources,
		WaitMS:    float64(grant.Wait.Microseconds()) / 1000,
	})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Release(req.SessionID); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{Released: true})
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ttl, err := s.Renew(req.SessionID, time.Duration(req.TTLMS)*time.Millisecond)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RenewResponse{Renewed: true, TTLMS: ttl.Milliseconds()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.WriteMetrics(w)
}

func (s *Server) handleCrash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("node query parameter required"))
		return
	}
	steps := 0
	if v := r.URL.Query().Get("steps"); v != "" {
		steps, err = strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("steps must be an integer"))
			return
		}
	}
	if err := s.InjectCrash(graph.ProcID(node), steps); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	mode := "malicious"
	if steps <= 0 {
		mode = "benign"
	}
	writeJSON(w, http.StatusOK, CrashResponse{Node: node, Steps: steps, Mode: mode})
}

func (s *Server) handleRestart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("node query parameter required"))
		return
	}
	mode := msgpass.RestartClean
	switch r.URL.Query().Get("mode") {
	case "", "clean":
	case "garbage", "arbitrary":
		mode = msgpass.RestartArbitrary
	default:
		writeErr(w, http.StatusBadRequest, errors.New("mode must be clean or garbage"))
		return
	}
	fenced, err := s.RestartNode(graph.ProcID(node), mode)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, RestartResponse{Node: node, Mode: mode.String(), Fenced: fenced})
}

// MembershipResponse is the body of a successful leave or join.
type MembershipResponse struct {
	Node int `json:"node"`
	// Op is "leave" or "join".
	Op string `json:"op"`
	// Fenced is how many leases the leave revoked (0 for joins).
	Fenced int `json:"fenced"`
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	node, ok := membershipNode(w, r)
	if !ok {
		return
	}
	fenced, err := s.LeaveNode(graph.ProcID(node))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, MembershipResponse{Node: node, Op: "leave", Fenced: fenced})
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	node, ok := membershipNode(w, r)
	if !ok {
		return
	}
	if err := s.JoinNode(graph.ProcID(node)); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, MembershipResponse{Node: node, Op: "join"})
}

// membershipNode validates the shared method/query contract of the
// leave and join endpoints.
func membershipNode(w http.ResponseWriter, r *http.Request) (int, bool) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return 0, false
	}
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("node query parameter required"))
		return 0, false
	}
	return node, true
}
