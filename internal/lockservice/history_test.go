package lockservice

import (
	"testing"

	"mcdp/internal/drinkers"
	"mcdp/internal/graph"
)

// TestHistoryRecordsArbiterLifecycle drives an arbiter with a tapped
// history through submit → grant → release and submit → cancel, and
// checks both the recorded event order and that the checker accepts it.
func TestHistoryRecordsArbiterLifecycle(t *testing.T) {
	g := graph.Ring(5)
	a := drinkers.NewArbiter(g, 8)
	h := NewHistory()
	h.Tap(a)

	bottles := g.IncidentEdgeIndices(0)
	s1, err := a.Submit(0, bottles)
	if err != nil {
		t.Fatalf("submit s1: %v", err)
	}
	s2, err := a.Submit(2, g.IncidentEdgeIndices(2))
	if err != nil {
		t.Fatalf("submit s2: %v", err)
	}
	// Grant s1 only (node 0 eating), release it, then cancel s2.
	if got := a.Pump(func(p graph.ProcID) bool { return p == 0 }); len(got) != 1 || got[0] != s1 {
		t.Fatalf("pump granted %v, want [s1]", got)
	}
	if !a.Release(s1) {
		t.Fatal("release s1 failed")
	}
	if !a.Cancel(s2) {
		t.Fatal("cancel s2 failed")
	}

	events := h.Events()
	wantKinds := []HistoryKind{HSubmit, HSubmit, HGrant, HRelease, HCancel}
	wantSessions := []int64{1, 2, 1, 1, 2}
	if len(events) != len(wantKinds) {
		t.Fatalf("recorded %d events, want %d: %v", len(events), len(wantKinds), events)
	}
	for i, e := range events {
		if e.Kind != wantKinds[i] || e.Session != wantSessions[i] {
			t.Errorf("event %d = %v, want kind %v session %d", i, e, wantKinds[i], wantSessions[i])
		}
		if e.Seq != int64(i+1) {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if bad := h.Check(g); len(bad) != 0 {
		t.Fatalf("clean history flagged: %v", bad)
	}
}

// TestHistorySharedBottleSerialized checks that two sessions competing
// for one bottle are recorded as disjoint holds, never overlapping.
func TestHistorySharedBottleSerialized(t *testing.T) {
	g := graph.Ring(4)
	a := drinkers.NewArbiter(g, 8)
	h := NewHistory()
	h.Tap(a)

	shared := g.EdgeIndex(0, 1)
	s1, err := a.Submit(0, []int{shared})
	if err != nil {
		t.Fatalf("submit s1: %v", err)
	}
	s2, err := a.Submit(1, []int{shared})
	if err != nil {
		t.Fatalf("submit s2: %v", err)
	}
	all := func(graph.ProcID) bool { return true }
	if got := a.Pump(all); len(got) != 1 || got[0] != s1 {
		t.Fatalf("first pump granted %v, want only s1", got)
	}
	// While s1 drinks, the shared bottle blocks s2 even though node 1 is
	// inside its window.
	if got := a.Pump(all); len(got) != 0 {
		t.Fatalf("pump while s1 holds granted %v", got)
	}
	a.Release(s1)
	if got := a.Pump(all); len(got) != 1 || got[0] != s2 {
		t.Fatalf("post-release pump granted %v, want s2", got)
	}
	a.Release(s2)

	if bad := h.Check(g); len(bad) != 0 {
		t.Fatalf("serialized history flagged: %v", bad)
	}
}

// TestHistoryServerTap checks Config.History is wired through NewServer.
func TestHistoryServerTap(t *testing.T) {
	h := NewHistory()
	s := NewServer(Config{Graph: graph.Ring(5), History: h})
	sess, err := s.Arbiter().Submit(1, s.Graph().IncidentEdgeIndices(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s.Arbiter().Cancel(sess)
	events := h.Events()
	if len(events) != 2 || events[0].Kind != HSubmit || events[1].Kind != HCancel {
		t.Fatalf("server tap recorded %v, want [submit cancel]", events)
	}
}

// ev is shorthand for handcrafting histories in checker tests.
func ev(seq int64, k HistoryKind, session int64, home graph.ProcID, bottles ...int) HistoryEvent {
	return HistoryEvent{Seq: seq, Kind: k, Session: session, Home: home, Bottles: bottles}
}

// TestCheckEventsCatchesViolations feeds handcrafted illegal histories
// to the checker and requires each to be flagged.
func TestCheckEventsCatchesViolations(t *testing.T) {
	g := graph.Ring(5) // edges 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4) 4:(0,4)
	cases := []struct {
		name   string
		events []HistoryEvent
		want   int // minimum number of violations
	}{
		{
			name: "clean",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 0), ev(2, HGrant, 1, 0, 0), ev(3, HRelease, 1, 0, 0),
				ev(4, HSubmit, 2, 1, 0), ev(5, HGrant, 2, 1, 0), ev(6, HRelease, 2, 1, 0),
			},
			want: 0,
		},
		{
			name: "overlapping holds of one bottle",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 0), ev(2, HSubmit, 2, 1, 0),
				ev(3, HGrant, 1, 0, 0), ev(4, HGrant, 2, 1, 0),
				ev(5, HRelease, 1, 0, 0), ev(6, HRelease, 2, 1, 0),
			},
			want: 1,
		},
		{
			name: "open grant overlaps later grant",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 0), ev(2, HGrant, 1, 0, 0),
				ev(3, HSubmit, 2, 1, 0), ev(4, HGrant, 2, 1, 0),
			},
			want: 1,
		},
		{
			name: "grant before submit",
			events: []HistoryEvent{
				ev(1, HGrant, 1, 0, 0),
			},
			want: 1,
		},
		{
			name: "double grant",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 0), ev(2, HGrant, 1, 0, 0), ev(3, HGrant, 1, 0, 0),
			},
			want: 1,
		},
		{
			name: "release without grant",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 0), ev(2, HRelease, 1, 0, 0),
			},
			want: 1,
		},
		{
			name: "cancel after grant",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 0), ev(2, HGrant, 1, 0, 0), ev(3, HCancel, 1, 0, 0),
			},
			want: 1,
		},
		{
			name: "bottle not incident to home",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 2), // edge (2,3), home 0
			},
			want: 1,
		},
		{
			name: "bottle out of range",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 99),
			},
			want: 1,
		},
		{
			name: "distinct bottles never conflict",
			events: []HistoryEvent{
				ev(1, HSubmit, 1, 0, 0), ev(2, HSubmit, 2, 2, 2),
				ev(3, HGrant, 1, 0, 0), ev(4, HGrant, 2, 2, 2),
				ev(5, HRelease, 1, 0, 0), ev(6, HRelease, 2, 2, 2),
			},
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := CheckEvents(g, tc.events)
			if tc.want == 0 && len(bad) != 0 {
				t.Fatalf("clean history flagged: %v", bad)
			}
			if tc.want > 0 && len(bad) < tc.want {
				t.Fatalf("got %d violations %v, want >= %d", len(bad), bad, tc.want)
			}
		})
	}
}
