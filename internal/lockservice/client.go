package lockservice

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Client talks to a dinerd server over its HTTP/JSON API with
// bounded retries and exponential backoff. Retries cover transport
// errors, 5xx responses, and backpressure (429); logical rejections
// (400/404/408/422) surface immediately as *APIError.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7467".
	BaseURL string
	// HTTPClient defaults to a client with a 60s overall timeout.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (default 4).
	MaxAttempts int
	// Backoff is the first retry delay (default 50ms); it doubles per
	// attempt, is capped by MaxBackoff (default 1s), and is jittered
	// over the upper half of the window so concurrent retriers spread
	// out instead of thundering back in lockstep.
	Backoff    time.Duration
	MaxBackoff time.Duration

	// jitter is the backoff jitter PRNG state, lazily seeded on first
	// use (tests can pre-seed it for reproducible schedules).
	jitter atomic.Uint64

	// ringGen caches the last ring generation observed from /v1/ring or
	// a 409 wrong-shard rejection. When non-zero it is asserted on every
	// acquire, so a sharded server can bounce placements the client
	// resolved before a ring membership change.
	ringGen atomic.Uint64
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
	// RingGen is the server's ring generation when the response carried
	// one (409 wrong-shard rejections).
	RingGen uint64
	// RetryAfter is the server's backoff hint when the response carried
	// a Retry-After header (503 while a shard is leaderless during
	// failover). Zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dinerd: HTTP %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports whether the client would retry this failure.
// 409 wrong-shard is retryable because the call is idempotent up to
// placement: nothing was queued, and the response names the live ring
// generation to retry under.
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode == http.StatusConflict ||
		e.StatusCode >= 500
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 60 * time.Second}
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *Client) backoff(attempt int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	d := base << uint(attempt)
	if d > maxB || d <= 0 {
		d = maxB
	}
	// Full jitter over [d/2, d]: pure doubling re-synchronizes every
	// client that failed together, so each retry wave arrives as the
	// same thundering herd that caused the failure. Half the window is
	// kept deterministic so the cap still bounds tail latency.
	if c.jitter.Load() == 0 {
		c.jitter.CompareAndSwap(0, uint64(time.Now().UnixNano())|1)
	}
	x := splitmix(c.jitter.Add(0x9e3779b97f4a7c15))
	half := uint64(d / 2)
	return time.Duration(half + x%(half+1))
}

// do runs one HTTP round-trip and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		e := &APIError{StatusCode: resp.StatusCode, Message: msg, RingGen: apiErr.RingGen}
		if v := resp.Header.Get("Retry-After"); v != "" {
			// Seconds form only (possibly fractional, as the router
			// emits); the HTTP-date form is not worth parsing here.
			if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 {
				e.RetryAfter = time.Duration(secs * float64(time.Second))
			}
		}
		return e
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryDelay resolves the wait before retry number attempt: the
// server's Retry-After hint when the last rejection carried one
// (capped by MaxBackoff, jittered over its upper half so a fleet
// released at the same instant spreads out), else the client's own
// exponential backoff.
func (c *Client) retryDelay(attempt int, last error) time.Duration {
	apiErr, ok := last.(*APIError)
	if !ok || apiErr.RetryAfter <= 0 {
		return c.backoff(attempt)
	}
	d := apiErr.RetryAfter
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	if d > maxB {
		d = maxB
	}
	if c.jitter.Load() == 0 {
		c.jitter.CompareAndSwap(0, uint64(time.Now().UnixNano())|1)
	}
	x := splitmix(c.jitter.Add(0x9e3779b97f4a7c15))
	half := uint64(d / 2)
	return time.Duration(half + x%(half+1))
}

// call runs do with retry/backoff on transport errors and retryable
// API errors, respecting ctx between attempts.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var last error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.retryDelay(attempt-1, last)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err := c.do(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		last = err
		if apiErr, ok := err.(*APIError); ok {
			if !apiErr.IsRetryable() {
				return err
			}
			if apiErr.StatusCode == http.StatusConflict && apiErr.RingGen != 0 {
				// Adopt the live generation so the retry routes correctly.
				c.ringGen.Store(apiErr.RingGen)
				if ar, ok := body.(*AcquireRequest); ok {
					ar.RingGen = apiErr.RingGen
				}
			}
		}
		if ctx.Err() != nil {
			return last
		}
	}
	return last
}

// Acquire requests the resource set and blocks until grant, rejection,
// or ctx cancellation. timeout, when positive, is forwarded as the
// server-side wait budget.
//
//lint:lease acquire
func (c *Client) Acquire(ctx context.Context, resources []string, timeout, ttl time.Duration) (*AcquireResponse, error) {
	req := AcquireRequest{Resources: resources, RingGen: c.ringGen.Load()}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	if ttl > 0 {
		req.TTLMS = ttl.Milliseconds()
	}
	var resp AcquireResponse
	if err := c.call(ctx, http.MethodPost, "/v1/acquire", &req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ring fetches the router's ring description and caches its generation
// for subsequent acquires. Against an unsharded server the endpoint is
// absent and the call fails; callers that support both probe once and
// fall back.
func (c *Client) Ring(ctx context.Context) (*RingInfo, error) {
	var info RingInfo
	if err := c.call(ctx, http.MethodGet, "/v1/ring", nil, &info); err != nil {
		return nil, err
	}
	c.ringGen.Store(info.Generation)
	return &info, nil
}

// RingGen returns the cached ring generation (0 before the first Ring
// call or 409 rejection).
func (c *Client) RingGen() uint64 { return c.ringGen.Load() }

// Leave retires a worker from service (membership leave). Not retried:
// membership changes are distinct events, like Crash.
func (c *Client) Leave(ctx context.Context, node int) (*MembershipResponse, error) {
	return c.membership(ctx, "leave", node)
}

// Join readmits a departed worker through the humble clean reboot.
func (c *Client) Join(ctx context.Context, node int) (*MembershipResponse, error) {
	return c.membership(ctx, "join", node)
}

func (c *Client) membership(ctx context.Context, op string, node int) (*MembershipResponse, error) {
	var resp MembershipResponse
	path := fmt.Sprintf("/v1/admin/%s?node=%d", op, node)
	if err := c.do(ctx, http.MethodPost, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Release releases a granted session.
//
//lint:lease release
func (c *Client) Release(ctx context.Context, sessionID string) error {
	return c.call(ctx, http.MethodPost, "/v1/release", ReleaseRequest{SessionID: sessionID}, nil)
}

// Renew extends a live lease's TTL and returns the granted lifetime.
//
//lint:lease renew
func (c *Client) Renew(ctx context.Context, sessionID string, ttl time.Duration) (time.Duration, error) {
	req := RenewRequest{SessionID: sessionID}
	if ttl > 0 {
		req.TTLMS = ttl.Milliseconds()
	}
	var resp RenewResponse
	if err := c.call(ctx, http.MethodPost, "/v1/renew", req, &resp); err != nil {
		return 0, err
	}
	return time.Duration(resp.TTLMS) * time.Millisecond, nil
}

// Status fetches the server's status report.
func (c *Client) Status(ctx context.Context) (*StatusReport, error) {
	var rep StatusReport
	if err := c.call(ctx, http.MethodGet, "/v1/status", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Crash injects a fault: steps > 0 crashes the node maliciously (it
// takes that many arbitrary-state steps first), steps <= 0 is a clean
// kill. Not retried — fault injection is not idempotent in spirit.
func (c *Client) Crash(ctx context.Context, node, steps int) error {
	path := fmt.Sprintf("/v1/admin/crash?node=%d&steps=%d", node, steps)
	return c.do(ctx, http.MethodPost, path, nil, nil)
}

// Restart revives a crashed (or live) node; garbage revives it with
// arbitrary protocol state instead of clean. Not retried, like Crash —
// each call is a distinct fault-injection event.
func (c *Client) Restart(ctx context.Context, node int, garbage bool) (*RestartResponse, error) {
	mode := "clean"
	if garbage {
		mode = "garbage"
	}
	path := fmt.Sprintf("/v1/admin/restart?node=%d&mode=%s", node, mode)
	var resp RestartResponse
	if err := c.do(ctx, http.MethodPost, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: string(b)}
	}
	return string(b), nil
}
