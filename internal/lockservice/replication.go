package lockservice

import (
	"bufio"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mcdp/internal/wire"
)

// Replication op codes carried in wire repl-apply records. Grants and
// renews are the unsafe direction — losing one can resurrect a lock
// somewhere else — so the primary replicates them semi-synchronously
// (the client does not see the grant until every standby acked or the
// link was declared degraded). Releases, expirations, and fences are
// the safe direction: a lost one merely leaves a lease on the standby
// until its TTL drains, which can delay but never violate exclusion.
// Span markers mirror the router's prepare/commit/rollback decisions so
// a promoted standby knows which spans were mid-protocol. Heartbeats
// carry no mutation: Seq echoes the last sequence number the primary
// issued (so the standby can detect enqueue-dropped records) and
// DeadlineUS the latest live lease deadline (the standby's TTL-drain
// bound if records were lost).
const (
	ReplOpGrant byte = iota + 1
	ReplOpRelease
	ReplOpRenew
	ReplOpExpire
	ReplOpFence
	ReplOpSpanPrepare
	ReplOpSpanCommit
	ReplOpSpanRollback
	ReplOpHeartbeat
)

// LeaseEvent is one lease-table mutation as seen by the replication
// tap. Resources is set only for grants; Deadline only for grants and
// renews.
type LeaseEvent struct {
	Op        byte
	ID        string
	Resources []string
	Deadline  time.Time
}

// replBacklog bounds the primary-side record queue per standby. A full
// backlog drops the record (never blocks the serving path); the drop is
// visible to the standby as a heartbeat sequence gap, which forces a
// TTL-drain hold-down if that standby is later promoted.
const replBacklog = 1024

// replWaiter parks one semi-synchronous sender until its record is
// acked.
type replWaiter struct {
	seq uint64
	ch  chan struct{}
}

// replicator is the primary-side half of one replication stream: it
// batches lease-table records into repl-apply frames on conn and tracks
// the standby's acks so grants can block until durable on the replica.
// The stream outlives primaries: after a promotion the new primary
// writes to the same conn under a bumped incarnation.
type replicator struct {
	conn net.Conn
	inc  atomic.Uint64 // incarnation stamped on outgoing records

	seq      atomic.Uint64 // last sequence number issued (including drops)
	acked    atomic.Uint64 // highest sequence acked by the standby
	dropped  atomic.Int64  // records dropped at enqueue (backlog full)
	rejected atomic.Int64  // records the standby refused (stale incarnation)

	// Semi-sync demotion: after degradedAfter consecutive ack-budget
	// misses the stream stops being waited on (a dead standby must not
	// tax every grant forever).
	waitFails atomic.Int32
	degraded  atomic.Bool

	records chan wire.Msg
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	mu      sync.Mutex   //lint:order rank lockservice 30
	waiters []replWaiter // guarded by mu
}

// newReplicator starts the sender and ack-reader goroutines for one
// stream. inc is the incarnation of the primary wiring the stream.
func newReplicator(conn net.Conn, inc uint64) *replicator {
	r := &replicator{
		conn:    conn,
		records: make(chan wire.Msg, replBacklog),
		done:    make(chan struct{}),
	}
	r.inc.Store(inc)
	r.wg.Add(2)
	go r.sender()
	go r.ackLoop()
	return r
}

// send enqueues one lease record and returns its sequence number. A
// full backlog drops the record rather than stalling the lease path;
// the gap surfaces on the standby through heartbeat sequence numbers.
func (r *replicator) send(ev LeaseEvent) uint64 {
	seq := r.seq.Add(1)
	m := wire.Msg{
		Type:      wire.TypeReplApply,
		Corr:      seq,
		Seq:       seq,
		Inc:       r.inc.Load(),
		Op:        ev.Op,
		Session:   ev.ID,
		Resources: ev.Resources,
	}
	if !ev.Deadline.IsZero() {
		m.DeadlineUS = uint64(ev.Deadline.UnixMicro())
	}
	select {
	case r.records <- m:
	default:
		r.dropped.Add(1)
	}
	return seq
}

// heartbeat enqueues a liveness record: Seq echoes the last issued
// sequence number (no new number is consumed) and deadlineUS the
// primary's latest live lease deadline. Heartbeats are droppable and
// never acked.
func (r *replicator) heartbeat(deadlineUS uint64) {
	m := wire.Msg{
		Type:       wire.TypeReplApply,
		Seq:        r.seq.Load(),
		Inc:        r.inc.Load(),
		Op:         ReplOpHeartbeat,
		DeadlineUS: deadlineUS,
	}
	select {
	case r.records <- m:
	default:
	}
}

// wait blocks until the standby acks sequence seq, the timeout lapses,
// or the stream closes; it reports whether the ack arrived.
func (r *replicator) wait(seq uint64, timeout time.Duration) bool {
	if r.acked.Load() >= seq {
		return true
	}
	w := replWaiter{seq: seq, ch: make(chan struct{})}
	r.mu.Lock()
	if r.acked.Load() >= seq {
		r.mu.Unlock()
		return true
	}
	r.waiters = append(r.waiters, w)
	r.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return true
	case <-t.C:
		return false
	case <-r.done:
		return false
	}
}

// lag is the primary's view of how far this standby trails: issued
// minus acked records (enqueue drops count — they will never be acked,
// which is exactly the signal a promotion decision needs).
func (r *replicator) lag() uint64 {
	s, a := r.seq.Load(), r.acked.Load()
	if a > s {
		return 0
	}
	return s - a
}

// setInc restamps the stream for a new primary incarnation (promotion
// rewires the tap, not the conn).
func (r *replicator) setInc(inc uint64) { r.inc.Store(inc) }

// sender drains the record queue into batched repl-apply frames.
func (r *replicator) sender() {
	defer r.wg.Done()
	buf := make([]byte, 0, 4096)
	batch := make([]wire.Msg, 0, 64)
	for {
		select {
		case <-r.done:
			return
		case m := <-r.records:
			batch = append(batch[:0], m)
		drain:
			for len(batch) < cap(batch) {
				select {
				case m := <-r.records:
					batch = append(batch, m)
				default:
					break drain
				}
			}
			buf = wire.AppendFrame(buf[:0], wire.TypeReplApply, batch)
			if _, err := r.conn.Write(buf); err != nil {
				return
			}
		}
	}
}

// ackLoop reads repl-ack frames and advances the acked watermark,
// waking blocked semi-synchronous senders.
func (r *replicator) ackLoop() {
	defer r.wg.Done()
	br := bufio.NewReader(r.conn)
	for {
		typ, entries, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		if typ != wire.TypeReplAck {
			continue
		}
		for i := range entries {
			if entries[i].Code != 0 {
				r.rejected.Add(1)
				continue
			}
			r.advance(entries[i].Seq)
		}
	}
}

// advance raises the acked watermark to seq and releases every waiter
// at or below it.
func (r *replicator) advance(seq uint64) {
	for {
		cur := r.acked.Load()
		if seq <= cur {
			return
		}
		if r.acked.CompareAndSwap(cur, seq) {
			break
		}
	}
	r.mu.Lock()
	kept := r.waiters[:0]
	for _, w := range r.waiters {
		if w.seq <= seq {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	r.waiters = kept
	r.mu.Unlock()
}

// close tears the stream down and joins both goroutines. Closing the
// conn unblocks the reader and any in-flight write.
func (r *replicator) close() {
	r.once.Do(func() {
		close(r.done)
		r.conn.Close()
	})
	r.wg.Wait()
}

// replLease is a standby's view of one replicated lease.
type replLease struct {
	resources []string
	deadline  time.Time
}

// standby is the receiver half of a replication stream: it applies the
// primary's lease-table deltas to a shadow table on behalf of srv (the
// hot-standby server that will adopt the table if promoted) and acks
// each applied record. Records stamped with an incarnation other than
// the replica set's current one — a deposed primary still writing —
// are refused with code 409.
type standby struct {
	srv    *Server
	curInc func() uint64 // the replica set's live incarnation

	wg sync.WaitGroup

	mu        sync.Mutex           //lint:order rank lockservice 34
	table     map[string]replLease // guarded by mu: replicated lease shadow
	prepared  map[string]bool      // guarded by mu: spans prepared but not resolved
	streamInc uint64               // guarded by mu: incarnation of the live stream
	baseSeq   uint64               // guarded by mu: first sequence seen on the live stream
	applied   uint64               // guarded by mu: highest applied record sequence
	gapSeen   bool                 // guarded by mu: a sequence jump proved a record was lost
	hbSeq     uint64               // guarded by mu: highest heartbeat-echoed sequence
	hbDeadUS  uint64               // guarded by mu: latest lease deadline heartbeats reported
	lastFrame time.Time            // guarded by mu: when the last frame arrived
}

// newStandby builds the receiver for srv. curInc must read the replica
// set's current incarnation without locks (it fences stale streams).
func newStandby(srv *Server, curInc func() uint64) *standby {
	return &standby{
		srv:      srv,
		curInc:   curInc,
		table:    make(map[string]replLease),
		prepared: make(map[string]bool),
	}
}

// serve starts a reader goroutine on conn; join joins it.
func (b *standby) serve(conn net.Conn) {
	b.wg.Add(1)
	go b.reader(conn)
}

// join waits for every reader started by serve to exit (their conns
// must be closed first).
func (b *standby) join() { b.wg.Wait() }

// reader applies repl-apply frames from conn and writes ack frames
// back. It exits when the conn dies.
func (b *standby) reader(conn net.Conn) {
	defer b.wg.Done()
	br := bufio.NewReader(conn)
	buf := make([]byte, 0, 512)
	acks := make([]wire.Msg, 0, 64)
	for {
		typ, entries, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		if typ != wire.TypeReplApply {
			continue
		}
		acks = acks[:0]
		cur := b.curInc()
		b.mu.Lock()
		b.lastFrame = time.Now()
		for i := range entries {
			m := &entries[i]
			if m.Inc != cur {
				// A deposed primary is still writing: refuse, so its
				// rejected counter records the fencing.
				acks = append(acks, wire.Msg{Type: wire.TypeReplAck, Corr: m.Corr, Seq: m.Seq, Inc: cur, Code: 409})
				continue
			}
			if m.Inc != b.streamInc {
				// New primary incarnation: restart sequence tracking at
				// this record (earlier numbers belong to the old stream).
				b.streamInc = m.Inc
				b.baseSeq = m.Seq
				b.applied, b.hbSeq = 0, 0
				b.gapSeen = false
			}
			if m.Op == ReplOpHeartbeat {
				if m.Seq > b.hbSeq {
					b.hbSeq = m.Seq
				}
				if m.DeadlineUS > b.hbDeadUS {
					b.hbDeadUS = m.DeadlineUS
				}
				continue // liveness only, not acked
			}
			if b.applied >= b.baseSeq && m.Seq > b.applied+1 {
				// A sequence jump on the FIFO stream proves a record was
				// dropped at the primary's enqueue. The ack watermark and
				// the heartbeat check both mask interior drops (later acks
				// raise them past the hole), so contiguity is the only
				// witness — sticky until the next incarnation restarts the
				// stream.
				b.gapSeen = true
			}
			b.applyLocked(m)
			if m.Seq > b.applied {
				b.applied = m.Seq
			}
			acks = append(acks, wire.Msg{Type: wire.TypeReplAck, Corr: m.Corr, Seq: m.Seq, Inc: m.Inc, Code: 0})
		}
		b.mu.Unlock()
		if len(acks) > 0 {
			buf = wire.AppendFrame(buf[:0], wire.TypeReplAck, acks)
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
	}
}

// applyLocked folds one record into the shadow table. Grants upsert —
// that makes a promoted primary's adoption stream double as a snapshot
// for surviving standbys.
//
// requires mu
func (b *standby) applyLocked(m *wire.Msg) {
	switch m.Op {
	case ReplOpGrant:
		b.table[m.Session] = replLease{
			resources: append([]string(nil), m.Resources...),
			deadline:  time.UnixMicro(int64(m.DeadlineUS)),
		}
	case ReplOpRenew:
		if l, ok := b.table[m.Session]; ok {
			l.deadline = time.UnixMicro(int64(m.DeadlineUS))
			b.table[m.Session] = l
		}
	case ReplOpRelease, ReplOpExpire, ReplOpFence:
		delete(b.table, m.Session)
	case ReplOpSpanPrepare:
		b.prepared[m.Session] = true
	case ReplOpSpanCommit, ReplOpSpanRollback:
		delete(b.prepared, m.Session)
	}
}

// replicaState snapshots what a promotion decision needs from one
// standby: how far it applied, whether the stream showed loss, and the
// TTL-drain bound for anything that may have been lost.
type replicaState struct {
	applied   uint64
	gap       bool      // records were issued that this standby never applied
	drainTo   time.Time // latest lease deadline the primary ever reported
	lastFrame time.Time // recency of the stream (staleness detection)
}

// state returns the standby's promotion-relevant counters.
func (b *standby) state() replicaState {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := replicaState{
		applied:   b.applied,
		gap:       b.gapSeen || (b.hbSeq > b.applied && b.hbSeq > b.baseSeq),
		lastFrame: b.lastFrame,
	}
	if b.hbDeadUS > 0 {
		st.drainTo = time.UnixMicro(int64(b.hbDeadUS))
	}
	return st
}

// snapshot returns the shadow table as lease events sorted by ID —
// the proven leases a promotion will adopt.
func (b *standby) snapshot() []LeaseEvent {
	b.mu.Lock()
	out := make([]LeaseEvent, 0, len(b.table))
	for id, l := range b.table {
		out = append(out, LeaseEvent{
			Op:        ReplOpGrant,
			ID:        id,
			Resources: append([]string(nil), l.resources...),
			Deadline:  l.deadline,
		})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Leases returns the number of leases in the shadow table (tests and
// status).
func (b *standby) Leases() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.table)
}
