package lockservice

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcdp/internal/graph"
	"mcdp/internal/wire"
)

// logCapture collects supervisor log lines for assertions.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) all() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]string(nil), lc.lines...)
}

func (lc *logCapture) contains(substr string) bool {
	for _, l := range lc.all() {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

// fastFailover returns failover knobs tuned for tests: detection in
// ~10ms, promotions at most every 300ms.
func fastFailover(lc *logCapture) FailoverConfig {
	return FailoverConfig{
		CheckEvery:     5 * time.Millisecond,
		Misses:         2,
		Cooloff:        300 * time.Millisecond,
		HeartbeatEvery: 10 * time.Millisecond,
		Logf:           lc.logf,
	}
}

func startReplicatedRouter(t *testing.T, shards, replicas int, fo FailoverConfig) *Router {
	t.Helper()
	rt := NewRouter(RouterConfig{
		Shards:   shards,
		Replicas: replicas,
		Base:     fastConfig(graph.Grid(2, 3)),
		Failover: fo,
	})
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Stop(ctx)
	})
	return rt
}

// TestFailoverEndToEnd is the tentpole e2e: a replicated shard loses
// its primary, the supervisor promotes the standby under a bumped ring
// generation, the replicated lease is adopted under its original ID,
// and a client rides through the blackout on its ordinary 503/409
// retry loop. Run under -race in CI (the failover-smoke step).
func TestFailoverEndToEnd(t *testing.T) {
	lc := &logCapture{}
	rt := startReplicatedRouter(t, 1, 1, fastFailover(lc))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c := NewClient(hs.URL)
	c.Backoff = 2 * time.Millisecond
	if _, err := c.Ring(ctx); err != nil {
		t.Fatalf("Ring: %v", err)
	}
	genBefore := c.RingGen()

	held, err := c.Acquire(ctx, []string{"edge:0-1"}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("acquire before failover: %v", err)
	}
	oldPrimary := rt.Shard(0)

	if err := rt.Failover(0, 10*time.Second); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	newPrimary := rt.Shard(0)
	if newPrimary == oldPrimary {
		t.Fatal("failover did not swap the primary")
	}
	info := rt.ShardInfo(0)
	if info.Incarnation != 2 || info.Standbys != 0 || info.Halted {
		t.Fatalf("post-failover shard info: %+v", info)
	}
	if got := rt.RingInfo().Generation; got != genBefore+1 {
		t.Fatalf("ring generation after failover = %d, want %d", got, genBefore+1)
	}
	// The replicated lease was adopted under its original session ID.
	if got := newPrimary.ActiveLeases(); got != 1 {
		t.Fatalf("promoted primary holds %d leases, want 1 adopted", got)
	}
	if got := newPrimary.Metrics().LeasesAdopted.Load(); got != 1 {
		t.Fatalf("LeasesAdopted = %d, want 1", got)
	}
	// The adopted lease excludes rivals exactly like the original grant.
	rivalCtx, rivalCancel := context.WithTimeout(ctx, 200*time.Millisecond)
	if _, err := newPrimary.Acquire(rivalCtx, []string{"edge:0-1"}, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("rival acquire of adopted lease: err = %v, want ErrTimeout", err)
	}
	rivalCancel()

	// The client's cached generation is stale: its ordinary retry loop
	// (409 + live generation) must recover without operator help.
	g2, err := c.Acquire(ctx, []string{"edge:2-3"}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("acquire after failover: %v", err)
	}
	if c.RingGen() != genBefore+1 {
		t.Fatalf("client generation after retry = %d, want %d", c.RingGen(), genBefore+1)
	}
	// The pre-failover session stays releasable through the new primary.
	if err := c.Release(ctx, held.SessionID); err != nil {
		t.Fatalf("release of adopted lease: %v", err)
	}
	if err := c.Release(ctx, g2.SessionID); err != nil {
		t.Fatalf("release: %v", err)
	}

	// Promotion decisions are logged exactly once, with reason and lag.
	var promoted int
	for _, l := range lc.all() {
		if strings.Contains(l, "promoted standby") {
			promoted++
			if !strings.Contains(l, "reason=") || !strings.Contains(l, "lag=") {
				t.Fatalf("promotion log lacks reason/lag: %q", l)
			}
		}
	}
	if promoted != 1 {
		t.Fatalf("%d promotion log lines, want 1: %v", promoted, lc.all())
	}

	rep := rt.Status()
	sub := rep.Reports[0]
	if sub.Role != "primary" || sub.ShardIncarnation != 2 || sub.Standbys != 0 {
		t.Fatalf("status role=%q incarnation=%d standbys=%d", sub.Role, sub.ShardIncarnation, sub.Standbys)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"dinerd_failover_total 1",
		`dinerd_shard_incarnation{shard="0"} 2`,
		`dinerd_shard_role{shard="0"} 1`,
		"dinerd_promotion_seconds_count 1",
		"dinerd_leases_adopted_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if d := rt.Metrics().PromotionDurations(); len(d) != 1 || d[0] <= 0 {
		t.Fatalf("PromotionDurations = %v, want one positive sample", d)
	}
}

// TestShardLeaderlessRetryAfter: with the only standby dead, a killed
// primary leaves the shard dark — requests draw 503 with a concrete
// Retry-After hint, the failed promotion is logged, and the halted
// standby is never promoted (incarnation stays put).
func TestShardLeaderlessRetryAfter(t *testing.T) {
	lc := &logCapture{}
	rt := startReplicatedRouter(t, 1, 1, fastFailover(lc))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	set := rt.sets[0]
	if !set.killStandby(0) {
		t.Fatal("killStandby(0) found no standby")
	}
	set.killPrimary()

	waitCond(t, 5*time.Second, "failed promotion to be logged", func() bool {
		return lc.contains("promotion failed")
	})
	if got := set.incarnation(); got != 1 {
		t.Fatalf("incarnation = %d after failed promotion, want 1 (halted standby never promoted)", got)
	}

	c := NewClient(hs.URL)
	c.MaxAttempts = 1
	_, err := c.Acquire(ctx, []string{"edge:0-1"}, time.Second, 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("acquire on dark shard: err = %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("503 carried no Retry-After hint: %+v", apiErr)
	}
	if rt.Metrics().LeaderlessRejections.Load() < 1 {
		t.Fatal("LeaderlessRejections not bumped")
	}
	if got := rt.Metrics().Failovers.Load(); got != 0 {
		t.Fatalf("Failovers = %d on a dark shard, want 0", got)
	}
}

// TestGenerationFencingParity stages the split-brain race on both
// facades: an acquire blocks on the primary, a promotion deposes that
// primary mid-wait, and when the blocked request is finally granted by
// the deposed server the fence surrenders the lease and answers 409 —
// identically over HTTP and the wire transport, both carrying the live
// ring generation.
func TestGenerationFencingParity(t *testing.T) {
	lc := &logCapture{}
	// Slow checks: promotions in this test are driven directly, and the
	// primary is healthy throughout, so the supervisor stays idle.
	fo := fastFailover(lc)
	rt := startReplicatedRouter(t, 1, 2, fo)
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	wireAddr := startWireListener(t, rt.WireBackend())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	set := rt.sets[0]
	held, err := rt.Acquire(ctx, []string{"edge:0-1"}, 0, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	blockedDepth := func(s *Server) func() bool {
		return func() bool {
			return s.Arbiter().QueueDepth(0)+s.Arbiter().QueueDepth(1) >= 1
		}
	}

	// Round 1: HTTP. The request parks behind the holder on the current
	// primary; a promotion deposes that primary while it waits.
	p1 := rt.Shard(0)
	httpRes := make(chan error, 1)
	go func() {
		c := NewClient(hs.URL)
		c.MaxAttempts = 1
		_, err := c.Acquire(ctx, []string{"edge:0-1"}, 10*time.Second, 0)
		httpRes <- err
	}()
	waitCond(t, 5*time.Second, "HTTP acquire to queue", blockedDepth(p1))
	if _, err := set.promote(); err != nil {
		t.Fatalf("promote #1: %v", err)
	}
	// Unblock the queued acquire on the DEPOSED server: its grant must
	// be fenced, not delivered.
	if err := p1.Release(held.SessionID); err != nil {
		t.Fatalf("release on deposed primary: %v", err)
	}
	err = <-httpRes
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("HTTP fenced acquire: err = %v, want 409", err)
	}
	if !strings.Contains(apiErr.Message, "deposed") {
		t.Fatalf("HTTP 409 message %q does not name deposal", apiErr.Message)
	}
	if apiErr.RingGen == 0 {
		t.Fatal("HTTP 409 carried no ring generation")
	}
	// The fenced grant was surrendered on the deposed server.
	if got := p1.ActiveLeases(); got != 0 {
		t.Fatalf("deposed primary still holds %d leases", got)
	}

	// Round 2: wire. The promoted primary adopted the holder's lease, so
	// the same race restages against the next standby.
	p2 := rt.Shard(0)
	if got := p2.ActiveLeases(); got != 1 {
		t.Fatalf("promoted primary holds %d leases, want 1 adopted", got)
	}
	wireRes := make(chan error, 1)
	go func() {
		wc := wire.NewClient(wireAddr)
		wc.MaxAttempts = 1
		defer wc.Close()
		_, err := wc.Acquire(ctx, []string{"edge:0-1"}, 10*time.Second, 0)
		wireRes <- err
	}()
	waitCond(t, 5*time.Second, "wire acquire to queue", blockedDepth(p2))
	if _, err := set.promote(); err != nil {
		t.Fatalf("promote #2: %v", err)
	}
	if err := p2.Release(held.SessionID); err != nil {
		t.Fatalf("release on deposed primary #2: %v", err)
	}
	err = <-wireRes
	var wErr *wire.Error
	if !errors.As(err, &wErr) || wErr.Code != 409 {
		t.Fatalf("wire fenced acquire: err = %v, want code 409", err)
	}
	if !strings.Contains(wErr.Text, "deposed") {
		t.Fatalf("wire 409 text %q does not name deposal", wErr.Text)
	}
	if wErr.RingGen == 0 {
		t.Fatal("wire 409 carried no ring generation")
	}
	if got := p2.ActiveLeases(); got != 0 {
		t.Fatalf("deposed primary #2 still holds %d leases", got)
	}
	// The holder's lease survived two promotions; the current primary's
	// adopted copy still routes by its original session ID.
	if err := rt.Release(held.SessionID); err != nil {
		t.Fatalf("release of twice-adopted lease: %v", err)
	}
}

// TestClientRetryAfterHint pins the client's Retry-After handling: a
// 503 carrying a hint delays the retry by at least half the hint
// (jitter keeps the rest), overriding the much shorter exponential
// backoff, and the hint is capped by MaxBackoff.
func TestClientRetryAfterHint(t *testing.T) {
	c := &Client{Backoff: time.Millisecond, MaxBackoff: time.Second}
	c.jitter.Store(42)
	hinted := &APIError{StatusCode: 503, RetryAfter: 400 * time.Millisecond}
	for i := 0; i < 32; i++ {
		d := c.retryDelay(0, hinted)
		if d < 200*time.Millisecond || d > 400*time.Millisecond {
			t.Fatalf("hinted delay %v outside [200ms,400ms]", d)
		}
	}
	capped := &APIError{StatusCode: 503, RetryAfter: time.Minute}
	for i := 0; i < 32; i++ {
		if d := c.retryDelay(0, capped); d > time.Second {
			t.Fatalf("hinted delay %v exceeds MaxBackoff cap", d)
		}
	}
	// Without a hint the ordinary exponential backoff applies.
	if d := c.retryDelay(0, &APIError{StatusCode: 503}); d > time.Millisecond {
		t.Fatalf("unhinted delay %v, want <= base backoff", d)
	}

	// End to end: one 503 with a 200ms hint, then success. The client's
	// base backoff is 1ms, so an elapsed time >= 100ms proves the hint —
	// not the exponential schedule — governed the wait.
	var calls int32
	var mu sync.Mutex
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "0.200")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"released":true}`))
	}))
	defer hs.Close()
	hc := NewClient(hs.URL)
	hc.Backoff = time.Millisecond
	start := time.Now()
	if err := hc.Release(context.Background(), "k0:s00000000-1"); err != nil {
		t.Fatalf("release through hinted retry: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("retry fired after %v, want >= 100ms (hint ignored)", elapsed)
	}
}

// TestSupervisorCooloffHoldsFlappingShard: a shard whose promoted
// primary immediately dies again gets at most one promotion per
// cool-off window, and each promotion is logged with its reason and
// observed replication lag.
func TestSupervisorCooloffHoldsFlappingShard(t *testing.T) {
	lc := &logCapture{}
	fo := fastFailover(lc)
	fo.Cooloff = 600 * time.Millisecond
	rt := startReplicatedRouter(t, 1, 2, fo)

	set := rt.sets[0]
	set.killPrimary()
	waitCond(t, 5*time.Second, "first promotion", func() bool {
		return rt.Metrics().Failovers.Load() == 1
	})
	// Flap: the freshly promoted primary dies inside the cool-off
	// window. The supervisor must hold the second promotion down.
	set.killPrimary()
	time.Sleep(250 * time.Millisecond)
	if got := rt.Metrics().Failovers.Load(); got != 1 {
		t.Fatalf("Failovers = %d inside cool-off window, want 1", got)
	}
	waitCond(t, 5*time.Second, "second promotion after cool-off", func() bool {
		return rt.Metrics().Failovers.Load() == 2
	})
	var promoted int
	for _, l := range lc.all() {
		if strings.Contains(l, "promoted standby") {
			promoted++
			if !strings.Contains(l, "reason=") || !strings.Contains(l, "lag=") {
				t.Fatalf("promotion log lacks reason/lag: %q", l)
			}
		}
	}
	if promoted != 2 {
		t.Fatalf("%d promotion log lines, want 2", promoted)
	}
	if got := rt.ShardInfo(0).Incarnation; got != 3 {
		t.Fatalf("incarnation = %d after two promotions, want 3", got)
	}
}

// TestFailoverAdminEndpoint drives the kill-primary switch over HTTP:
// POST /v1/admin/failover promotes and answers the new shard state;
// killing the last primary (no standby left) is refused with 409.
func TestFailoverAdminEndpoint(t *testing.T) {
	lc := &logCapture{}
	rt := startReplicatedRouter(t, 1, 1, fastFailover(lc))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/admin/failover?shard=0&timeout_ms=10000", "", nil)
	if err != nil {
		t.Fatalf("POST failover: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover status = %d, want 200", resp.StatusCode)
	}
	if got := rt.ShardInfo(0).Incarnation; got != 2 {
		t.Fatalf("incarnation after admin failover = %d, want 2", got)
	}

	// No standby remains: a second kill must be refused, leaving the
	// shard serving.
	resp2, err := http.Post(hs.URL+"/v1/admin/failover?shard=0&timeout_ms=1000", "", nil)
	if err != nil {
		t.Fatalf("POST failover #2: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("failover with no standby: status = %d, want 409", resp2.StatusCode)
	}
	if rt.Shard(0).Halted() {
		t.Fatal("refused failover killed the primary anyway")
	}
}
