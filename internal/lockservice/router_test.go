package lockservice

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcdp/internal/graph"
	"mcdp/internal/shard"
)

func startRouter(t *testing.T, shards int, base Config) *Router {
	t.Helper()
	rt := NewRouter(RouterConfig{Shards: shards, Base: base})
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rt.Stop(ctx)
	})
	return rt
}

// catalog returns generic resource names ("res-i"), which hash onto
// ring shards and then onto each shard's edges.
func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("res-%d", i)
	}
	return out
}

// TestRouterEndToEnd drives a 2-shard router over HTTP with concurrent
// clients: every grant must come from the shard the ring names, carry
// that shard's session prefix, and release cleanly. Run with -race in
// CI (the CI e2e smoke step).
func TestRouterEndToEnd(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 3)))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	info := NewClient(hs.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ring, err := info.Ring(ctx)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if ring.Shards != 2 || ring.Generation != 2 || len(ring.Members) != 2 {
		t.Fatalf("ring info: %+v", ring)
	}
	// The client-side replica of the ring must agree with the server.
	local := shard.New(ring.Seed, ring.Vnodes)
	for _, m := range ring.Members {
		if err := local.Add(m); err != nil {
			t.Fatal(err)
		}
	}

	names := catalog(16)
	byShard := rt.ShardKeys(names)
	if len(byShard) != 2 {
		t.Fatalf("catalog of 16 names landed on %d shards, want 2", len(byShard))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(hs.URL)
			for i := 0; i < 8; i++ {
				name := names[(w*8+i)%len(names)]
				want, _ := local.Lookup(name)
				grant, err := c.Acquire(ctx, []string{name}, 10*time.Second, 0)
				if err != nil {
					errs <- fmt.Errorf("acquire %q: %w", name, err)
					return
				}
				if !strings.HasPrefix(grant.SessionID, fmt.Sprintf("k%d:", want)) {
					errs <- fmt.Errorf("grant for %q has session %q, want shard %d prefix", name, grant.SessionID, want)
					return
				}
				if err := c.Release(ctx, grant.SessionID); err != nil {
					errs <- fmt.Errorf("release %q: %w", grant.SessionID, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	rep, err := info.Status(ctx)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if rep.Shards != 2 || len(rep.Reports) != 2 || rep.Grants != 48 {
		t.Fatalf("aggregate status: shards=%d reports=%d grants=%d", rep.Shards, len(rep.Reports), rep.Grants)
	}
	if rep.Workers != 12 {
		t.Fatalf("aggregate workers = %d, want 12", rep.Workers)
	}
	for i, sub := range rep.Reports {
		if sub.ShardID != i || sub.RingGen != 2 {
			t.Fatalf("sub-report %d: shard_id=%d ring_gen=%d", i, sub.ShardID, sub.RingGen)
		}
	}

	text, err := info.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"dinerd_router_ring_generation 2",
		"dinerd_router_shard_requests_total{shard=\"0\"}",
		"dinerd_router_shard_requests_total{shard=\"1\"}",
		"dinerd_grants_total 48",
		`shard="1"`,
		"dinerd_acquire_wait_seconds_count 48",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRouterCrossShardRejected: resources on different shards cannot be
// acquired atomically; the router rejects with 422 and counts it.
func TestRouterCrossShardRejected(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	byShard := rt.ShardKeys(catalog(32))
	if len(byShard[0]) == 0 || len(byShard[1]) == 0 {
		t.Fatalf("catalog did not cover both shards: %v", byShard)
	}
	pair := []string{byShard[0][0], byShard[1][0]}
	ctx := context.Background()
	if _, err := rt.Acquire(ctx, pair, 0, 0); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("cross-shard acquire: err = %v, want ErrCrossShard", err)
	}
	if got := rt.Metrics().CrossShardRejections.Load(); got != 1 {
		t.Fatalf("CrossShardRejections = %d, want 1", got)
	}
	// Over HTTP the same rejection is a 422.
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)
	_, err := c.Acquire(ctx, pair, time.Second, 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("HTTP cross-shard acquire: err = %v, want 422", err)
	}
}

// TestRouterWrongShardRetry: a client that resolved placement under a
// stale ring generation is bounced with 409 carrying the live
// generation, and its retry loop recovers without operator help. Also
// covers release-after-ring-leave: a lease granted by a shard stays
// releasable after the shard leaves the ring.
func TestRouterWrongShardRetry(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	byShard := rt.ShardKeys(catalog(32))
	onShard1 := byShard[1][0]

	c := NewClient(hs.URL)
	c.Backoff = time.Millisecond
	if _, err := c.Ring(ctx); err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if c.RingGen() != 2 {
		t.Fatalf("cached generation %d, want 2", c.RingGen())
	}
	// A lease on shard 1, held across the ring change.
	held, err := c.Acquire(ctx, []string{onShard1}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("acquire before ring change: %v", err)
	}

	if err := rt.RingLeave(1); err != nil {
		t.Fatalf("RingLeave: %v", err)
	}
	// The client's cached generation (2) is now stale (3): the first
	// attempt draws a 409, the retry adopts generation 3 and must land on
	// shard 0 — the only ring member left.
	grant, err := c.Acquire(ctx, []string{onShard1}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("acquire after ring change: %v", err)
	}
	if !strings.HasPrefix(grant.SessionID, "k0:") {
		t.Fatalf("post-leave grant %q not on shard 0", grant.SessionID)
	}
	if got := rt.Metrics().WrongShardRejections.Load(); got < 1 {
		t.Fatal("no wrong-shard rejection recorded")
	}
	if c.RingGen() != 3 {
		t.Fatalf("client generation after retry = %d, want 3", c.RingGen())
	}
	if err := c.Release(ctx, grant.SessionID); err != nil {
		t.Fatalf("release: %v", err)
	}
	// The old lease's shard prefix still routes its release.
	if err := c.Release(ctx, held.SessionID); err != nil {
		t.Fatalf("release on departed ring member: %v", err)
	}

	// Rejoin restores the original placement and refuses nonsense.
	if err := rt.RingJoin(1); err != nil {
		t.Fatalf("RingJoin: %v", err)
	}
	if err := rt.RingJoin(1); err == nil {
		t.Fatal("double ring join accepted")
	}
	if err := rt.RingJoin(7); err == nil {
		t.Fatal("ring join of unknown shard accepted")
	}
	if err := rt.RingLeave(0); err != nil {
		t.Fatalf("RingLeave(0): %v", err)
	}
	if err := rt.RingLeave(1); err == nil {
		t.Fatal("removing the last ring member accepted")
	}
}
