package lockservice

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcdp/internal/graph"
	"mcdp/internal/shard"
)

func startRouter(t *testing.T, shards int, base Config) *Router {
	t.Helper()
	rt := NewRouter(RouterConfig{Shards: shards, Base: base})
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rt.Stop(ctx)
	})
	return rt
}

// catalog returns generic resource names ("res-i"), which hash onto
// ring shards and then onto each shard's edges.
func catalog(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("res-%d", i)
	}
	return out
}

// TestRouterEndToEnd drives a 2-shard router over HTTP with concurrent
// clients: every grant must come from the shard the ring names, carry
// that shard's session prefix, and release cleanly. Run with -race in
// CI (the CI e2e smoke step).
func TestRouterEndToEnd(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 3)))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	info := NewClient(hs.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ring, err := info.Ring(ctx)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if ring.Shards != 2 || ring.Generation != 2 || len(ring.Members) != 2 {
		t.Fatalf("ring info: %+v", ring)
	}
	// The client-side replica of the ring must agree with the server.
	local := shard.New(ring.Seed, ring.Vnodes)
	for _, m := range ring.Members {
		if err := local.Add(m); err != nil {
			t.Fatal(err)
		}
	}

	names := catalog(16)
	byShard := rt.ShardKeys(names)
	if len(byShard) != 2 {
		t.Fatalf("catalog of 16 names landed on %d shards, want 2", len(byShard))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(hs.URL)
			for i := 0; i < 8; i++ {
				name := names[(w*8+i)%len(names)]
				want, _ := local.Lookup(name)
				grant, err := c.Acquire(ctx, []string{name}, 10*time.Second, 0)
				if err != nil {
					errs <- fmt.Errorf("acquire %q: %w", name, err)
					return
				}
				if !strings.HasPrefix(grant.SessionID, fmt.Sprintf("k%d:", want)) {
					errs <- fmt.Errorf("grant for %q has session %q, want shard %d prefix", name, grant.SessionID, want)
					return
				}
				if err := c.Release(ctx, grant.SessionID); err != nil {
					errs <- fmt.Errorf("release %q: %w", grant.SessionID, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	rep, err := info.Status(ctx)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if rep.Shards != 2 || len(rep.Reports) != 2 || rep.Grants != 48 {
		t.Fatalf("aggregate status: shards=%d reports=%d grants=%d", rep.Shards, len(rep.Reports), rep.Grants)
	}
	if rep.Workers != 12 {
		t.Fatalf("aggregate workers = %d, want 12", rep.Workers)
	}
	for i, sub := range rep.Reports {
		if sub.ShardID != i || sub.RingGen != 2 {
			t.Fatalf("sub-report %d: shard_id=%d ring_gen=%d", i, sub.ShardID, sub.RingGen)
		}
	}

	text, err := info.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"dinerd_router_ring_generation 2",
		"dinerd_router_shard_requests_total{shard=\"0\"}",
		"dinerd_router_shard_requests_total{shard=\"1\"}",
		"dinerd_grants_total 48",
		`shard="1"`,
		"dinerd_acquire_wait_seconds_count 48",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged metrics missing %q:\n%s", want, text)
		}
	}
}

// spanningPair returns one key per shard of a 2-shard router, from the
// generic catalog — a deliberately shard-spanning resource set.
func spanningPair(t *testing.T, rt *Router) []string {
	t.Helper()
	byShard := rt.ShardKeys(catalog(32))
	if len(byShard[0]) == 0 || len(byShard[1]) == 0 {
		t.Fatalf("catalog did not cover both shards: %v", byShard)
	}
	return []string{byShard[0][0], byShard[1][0]}
}

// TestRouterSpanAcquire: a resource set spanning shards acquires
// all-or-nothing through the span protocol — one span session backed
// by a sub-lease per shard, exclusive against overlapping spans,
// renewable and releasable as a unit, over both the Go API and HTTP.
func TestRouterSpanAcquire(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	pair := spanningPair(t, rt)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	grant, err := rt.Acquire(ctx, pair, 0, 0)
	if err != nil {
		t.Fatalf("span acquire %v: %v", pair, err)
	}
	if !strings.HasPrefix(grant.SessionID, "span:") {
		t.Fatalf("span grant session %q lacks span: prefix", grant.SessionID)
	}
	if len(grant.Resources) != 2 || grant.Resources[0] != pair[0] || grant.Resources[1] != pair[1] {
		t.Fatalf("span grant resources %v, want %v", grant.Resources, pair)
	}
	m := rt.Metrics()
	if a, c, rb := m.SpanAcquires.Load(), m.SpanCommits.Load(), m.SpanRollbacks.Load(); a != 1 || c != 1 || rb != 0 {
		t.Fatalf("span counters after commit: acquires=%d commits=%d rollbacks=%d, want 1/1/0", a, c, rb)
	}
	// Both shards hold exactly one sub-lease.
	for s := 0; s < 2; s++ {
		if got := rt.Shard(s).ActiveLeases(); got != 1 {
			t.Fatalf("shard %d active leases = %d, want 1", s, got)
		}
	}
	// An overlapping span must wait behind it — and time out here.
	short, shortCancel := context.WithTimeout(ctx, 200*time.Millisecond)
	if _, err := rt.Acquire(short, pair, 0, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("overlapping span acquire: err = %v, want ErrTimeout", err)
	}
	shortCancel()
	// Renew covers every sub-lease; release frees both shards.
	if _, err := rt.Renew(grant.SessionID, time.Second); err != nil {
		t.Fatalf("span renew: %v", err)
	}
	if err := rt.Release(grant.SessionID); err != nil {
		t.Fatalf("span release: %v", err)
	}
	for s := 0; s < 2; s++ {
		if got := rt.Shard(s).ActiveLeases(); got != 0 {
			t.Fatalf("shard %d active leases after span release = %d, want 0", s, got)
		}
	}
	if err := rt.Release(grant.SessionID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double span release: err = %v, want ErrNotFound", err)
	}

	// The same protocol over the HTTP facade: acquire, renew, release.
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)
	hg, err := c.Acquire(ctx, pair, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("HTTP span acquire: %v", err)
	}
	if !strings.HasPrefix(hg.SessionID, "span:") {
		t.Fatalf("HTTP span session %q lacks span: prefix", hg.SessionID)
	}
	if _, err := c.Renew(ctx, hg.SessionID, 5*time.Second); err != nil {
		t.Fatalf("HTTP span renew: %v", err)
	}
	if err := c.Release(ctx, hg.SessionID); err != nil {
		t.Fatalf("HTTP span release: %v", err)
	}
}

// TestRouterSingleShardFastPath: a multi-key set owned by one shard
// keeps the pre-span fast path — no prepare lease, no span counters,
// exactly one routed request — pinned under the seeded ring placement.
func TestRouterSingleShardFastPath(t *testing.T) {
	g := graph.Grid(2, 2)
	rt := startRouter(t, 2, fastConfig(g))
	byShard := rt.ShardKeys(catalog(32))

	// Find a same-shard pair that maps to one arbiter session (edges
	// sharing a home). Placement is seed-pinned, so the search is
	// deterministic; searching keeps the test robust to catalog size.
	mapper := NewResourceMapper(g)
	var pair []string
	var home int
	for s := 0; s < 2; s++ {
		keys := byShard[s]
		for i := 0; i < len(keys) && pair == nil; i++ {
			for j := i + 1; j < len(keys) && pair == nil; j++ {
				if _, _, err := mapper.MapSession([]string{keys[i], keys[j]}); err == nil {
					pair = []string{keys[i], keys[j]}
					home = s
				}
			}
		}
	}
	if pair == nil {
		t.Fatal("no single-shard mappable pair in catalog")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	grant, err := rt.Acquire(ctx, pair, 0, 0)
	if err != nil {
		t.Fatalf("single-shard multi-key acquire %v: %v", pair, err)
	}
	if !strings.HasPrefix(grant.SessionID, fmt.Sprintf("k%d:", home)) {
		t.Fatalf("fast-path session %q, want shard %d prefix (no span)", grant.SessionID, home)
	}
	m := rt.Metrics()
	if a := m.SpanAcquires.Load(); a != 0 {
		t.Fatalf("SpanAcquires = %d after single-shard set, want 0 (fast path)", a)
	}
	if c, rb := m.SpanCommits.Load(), m.SpanRollbacks.Load(); c != 0 || rb != 0 {
		t.Fatalf("span commit/rollback counters %d/%d, want 0/0", c, rb)
	}
	if got := m.ShardRequests[home].Load(); got != 1 {
		t.Fatalf("ShardRequests[%d] = %d, want exactly 1 (no extra round trips)", home, got)
	}
	if got := m.ShardRequests[1-home].Load(); got != 0 {
		t.Fatalf("ShardRequests[%d] = %d, want 0", 1-home, got)
	}
	// One lease, not one per key: the fast path never split the set.
	if got := rt.Shard(home).ActiveLeases(); got != 1 {
		t.Fatalf("shard %d active leases = %d, want 1", home, got)
	}
	if err := rt.Release(grant.SessionID); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// TestRouterSpanRollbackOnPrepareExpiry: a prepare lease that
// TTL-expires while the span waits on a later shard must be rolled
// back — every sub-lease released, dinerd_span_rollback_total emitted —
// and the client sees one clean failure, not a partial grant.
func TestRouterSpanRollbackOnPrepareExpiry(t *testing.T) {
	rt := NewRouter(RouterConfig{
		Shards:     2,
		Base:       fastConfig(graph.Grid(2, 2)),
		PrepareTTL: 50 * time.Millisecond, // expires well inside the blocked wait below
	})
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rt.Stop(ctx)
	})
	pair := spanningPair(t, rt)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	// A holder pins the shard-1 key, so the span prepares on shard 0
	// and then blocks on shard 1 past its 50ms prepare budget.
	holder := NewClient(hs.URL)
	held, err := holder.Acquire(ctx, []string{pair[1]}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	spanClient := NewClient(hs.URL)
	_, err = spanClient.Acquire(ctx, pair, 600*time.Millisecond, 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("blocked span acquire: err = %v, want 408", err)
	}

	m := rt.Metrics()
	if got := m.SpanRollbacks.Load(); got != 1 {
		t.Fatalf("SpanRollbacks = %d, want 1", got)
	}
	if got := m.SpanCommits.Load(); got != 0 {
		t.Fatalf("SpanCommits = %d, want 0", got)
	}
	// The janitor expired the abandoned prepare; rollback released any
	// residue. Only the holder's lease remains anywhere.
	if got := rt.Shard(0).ActiveLeases(); got != 0 {
		t.Fatalf("shard 0 active leases after rollback = %d, want 0", got)
	}
	if got := rt.Shard(1).ActiveLeases(); got != 1 {
		t.Fatalf("shard 1 active leases = %d, want 1 (the holder)", got)
	}
	if got := rt.Shard(0).Metrics().Expirations.Load(); got < 1 {
		t.Fatal("shard 0 recorded no lease expiration for the lost prepare")
	}

	// The new counter is on the merged exposition.
	text, err := NewClient(hs.URL).Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"dinerd_span_rollback_total 1",
		"dinerd_span_acquires_total 1",
		"dinerd_span_commits_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged metrics missing %q:\n%s", want, text)
		}
	}
	if err := holder.Release(ctx, held.SessionID); err != nil {
		t.Fatalf("holder release: %v", err)
	}
}

// TestRouterWrongShardRetry: a client that resolved placement under a
// stale ring generation is bounced with 409 carrying the live
// generation, and its retry loop recovers without operator help. Also
// covers release-after-ring-leave: a lease granted by a shard stays
// releasable after the shard leaves the ring.
// TestRouterSpanAbortOnPrepareLostMidSpan exercises the span
// protocol's OTHER rollback trigger: not a sub-acquire failure, but a
// prepare lease lost while a later shard was still being acquired. The
// shard-0 prepare (50ms TTL) is swept by the janitor while the span
// blocks behind a holder on shard 1; when the holder releases and the
// shard-1 sub-acquire finally succeeds, the refresh loop finds the
// shard-0 prepare gone and must abort the whole span, releasing the
// fresh shard-1 grant too — no sub-lease may survive an aborted span
// on any shard.
func TestRouterSpanAbortOnPrepareLostMidSpan(t *testing.T) {
	rt := NewRouter(RouterConfig{
		Shards:     2,
		Base:       fastConfig(graph.Grid(2, 2)),
		PrepareTTL: 50 * time.Millisecond, // swept by the 100ms janitor during the blocked wait
	})
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rt.Stop(ctx)
	})
	pair := spanningPair(t, rt)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	held, err := rt.Acquire(ctx, []string{pair[1]}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	// Release the holder only after the janitor has certainly swept the
	// span's shard-0 prepare (two full janitor periods past its TTL).
	go func() {
		time.Sleep(400 * time.Millisecond)
		if err := rt.Release(held.SessionID); err != nil {
			t.Errorf("holder release: %v", err)
		}
	}()

	_, err = rt.Acquire(ctx, pair, 10*time.Second, 0)
	if !errors.Is(err, ErrSpanAborted) {
		t.Fatalf("span acquire after lost prepare: err = %v, want ErrSpanAborted", err)
	}
	if !strings.Contains(err.Error(), "mid-span") {
		t.Fatalf("abort error %q does not name the mid-span refresh path", err)
	}

	m := rt.Metrics()
	if got := m.SpanRollbacks.Load(); got != 1 {
		t.Fatalf("SpanRollbacks = %d, want 1", got)
	}
	if got := m.SpanCommits.Load(); got != 0 {
		t.Fatalf("SpanCommits = %d, want 0", got)
	}
	for s := 0; s < 2; s++ {
		if got := rt.Shard(s).ActiveLeases(); got != 0 {
			t.Fatalf("shard %d active leases after span abort = %d, want 0", s, got)
		}
	}
}

func TestRouterWrongShardRetry(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	byShard := rt.ShardKeys(catalog(32))
	onShard1 := byShard[1][0]

	c := NewClient(hs.URL)
	c.Backoff = time.Millisecond
	if _, err := c.Ring(ctx); err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if c.RingGen() != 2 {
		t.Fatalf("cached generation %d, want 2", c.RingGen())
	}
	// A lease on shard 1, held across the ring change.
	held, err := c.Acquire(ctx, []string{onShard1}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("acquire before ring change: %v", err)
	}

	if err := rt.RingLeave(1); err != nil {
		t.Fatalf("RingLeave: %v", err)
	}
	// The client's cached generation (2) is now stale (3): the first
	// attempt draws a 409, the retry adopts generation 3 and must land on
	// shard 0 — the only ring member left.
	grant, err := c.Acquire(ctx, []string{onShard1}, 10*time.Second, 0)
	if err != nil {
		t.Fatalf("acquire after ring change: %v", err)
	}
	if !strings.HasPrefix(grant.SessionID, "k0:") {
		t.Fatalf("post-leave grant %q not on shard 0", grant.SessionID)
	}
	if got := rt.Metrics().WrongShardRejections.Load(); got < 1 {
		t.Fatal("no wrong-shard rejection recorded")
	}
	if c.RingGen() != 3 {
		t.Fatalf("client generation after retry = %d, want 3", c.RingGen())
	}
	if err := c.Release(ctx, grant.SessionID); err != nil {
		t.Fatalf("release: %v", err)
	}
	// The old lease's shard prefix still routes its release.
	if err := c.Release(ctx, held.SessionID); err != nil {
		t.Fatalf("release on departed ring member: %v", err)
	}

	// Rejoin restores the original placement and refuses nonsense.
	if err := rt.RingJoin(1); err != nil {
		t.Fatalf("RingJoin: %v", err)
	}
	if err := rt.RingJoin(1); err == nil {
		t.Fatal("double ring join accepted")
	}
	if err := rt.RingJoin(7); err == nil {
		t.Fatal("ring join of unknown shard accepted")
	}
	if err := rt.RingLeave(0); err != nil {
		t.Fatalf("RingLeave(0): %v", err)
	}
	if err := rt.RingLeave(1); err == nil {
		t.Fatal("removing the last ring member accepted")
	}
}
