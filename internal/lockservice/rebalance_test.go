package lockservice

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcdp/internal/control"
	"mcdp/internal/graph"
)

// TestMigrateKeyMovesPlacement: an uncontended migration commits
// immediately (nothing to drain), bumps the generation twice (fence +
// override), lands in the override table published by /v1/ring, and
// routes new acquires to the destination. Migrating the key back to
// its hash home clears the pin rather than stacking a redundant one.
func TestMigrateKeyMovesPlacement(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	byShard := rt.ShardKeys(catalog(32))
	key := byShard[0][0]
	gen0 := rt.RingInfo().Generation

	if err := rt.MigrateKey(key, 1); err != nil {
		t.Fatalf("MigrateKey: %v", err)
	}
	info := rt.RingInfo()
	if info.Generation != gen0+2 {
		t.Fatalf("generation after migrate = %d, want %d (fence + override)", info.Generation, gen0+2)
	}
	if got, ok := info.Overrides[key]; !ok || got != 1 {
		t.Fatalf("override table = %v, want %q -> 1", info.Overrides, key)
	}
	if count, og := rt.OverrideState(); count != 1 || og != info.Generation {
		t.Fatalf("OverrideState = (%d, %d), want (1, %d)", count, og, info.Generation)
	}
	g, err := rt.Acquire(ctx, []string{key}, time.Second, 0)
	if err != nil {
		t.Fatalf("acquire after migrate: %v", err)
	}
	if !strings.HasPrefix(g.SessionID, "k1:") {
		t.Fatalf("post-migrate grant %q not on shard 1", g.SessionID)
	}
	if err := rt.Release(g.SessionID); err != nil {
		t.Fatalf("release: %v", err)
	}
	if got := rt.Metrics().Rebalances.Load(); got != 1 {
		t.Fatalf("Rebalances = %d, want 1", got)
	}

	// Degenerate moves are rejected without touching the epoch. A move
	// to a shard that cannot exist is a request defect (errMigrateInvalid,
	// 400 over HTTP), not a state conflict.
	if err := rt.MigrateKey(key, 1); err == nil {
		t.Fatal("migrate to current placement succeeded, want error")
	} else if errors.Is(err, errMigrateInvalid) {
		t.Fatalf("migrate to current placement = %v, want a state conflict, not errMigrateInvalid", err)
	}
	if err := rt.MigrateKey(key, 7); !errors.Is(err, errMigrateInvalid) {
		t.Fatalf("migrate to out-of-range shard = %v, want errMigrateInvalid", err)
	}

	// Back to the hash home: the pin is deleted, not shadowed.
	if err := rt.MigrateKey(key, 0); err != nil {
		t.Fatalf("MigrateKey back: %v", err)
	}
	if count, _ := rt.OverrideState(); count != 0 {
		t.Fatalf("override count after round trip = %d, want 0", count)
	}
	g, err = rt.Acquire(ctx, []string{key}, time.Second, 0)
	if err != nil {
		t.Fatalf("acquire after round trip: %v", err)
	}
	if !strings.HasPrefix(g.SessionID, "k0:") {
		t.Fatalf("round-trip grant %q not back on shard 0", g.SessionID)
	}
	_ = rt.Release(g.SessionID)
}

// TestMigrateKeyDrainsAndFences: with a live holder, the migration
// fences the key (new acquires bounce 409 immediately, no queueing
// behind the drain) and blocks until the holder releases; only then
// does the override land. The 409 carries the live generation, so the
// HTTP client's retry loop walks over the epoch without operator help.
func TestMigrateKeyDrainsAndFences(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	byShard := rt.ShardKeys(catalog(32))
	key := byShard[0][0]

	holder, err := rt.Acquire(ctx, []string{key}, 30*time.Second, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	gen0 := rt.RingInfo().Generation
	done := make(chan error, 1)
	go func() { done <- rt.MigrateKey(key, 1) }()

	// The fence bumps the generation before the drain starts.
	deadline := time.Now().Add(5 * time.Second)
	for rt.RingInfo().Generation == gen0 {
		if time.Now().After(deadline) {
			t.Fatal("migration fence never landed")
		}
		time.Sleep(time.Millisecond)
	}
	// A fenced key bounces instantly with 409 — it must not enqueue a
	// waiter that could steal the lease mid-drain.
	if _, err := rt.Acquire(ctx, []string{key}, time.Second, 0); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("fenced acquire: err = %v, want ErrWrongShard", err)
	}
	// A span naming the fenced key bounces the same way.
	pair := spanningPair(t, rt)
	if pair[0] == key {
		if _, err := rt.Acquire(ctx, pair, time.Second, 0); !errors.Is(err, ErrWrongShard) {
			t.Fatalf("fenced span acquire: err = %v, want ErrWrongShard", err)
		}
	}
	select {
	case err := <-done:
		t.Fatalf("migration committed with a live holder: %v", err)
	default:
	}

	if err := rt.Release(holder.SessionID); err != nil {
		t.Fatalf("holder release: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("migration after drain: %v", err)
	}
	g, err := rt.Acquire(ctx, []string{key}, time.Second, 0)
	if err != nil {
		t.Fatalf("acquire after migrate: %v", err)
	}
	if !strings.HasPrefix(g.SessionID, "k1:") {
		t.Fatalf("post-migrate grant %q not on shard 1", g.SessionID)
	}
	_ = rt.Release(g.SessionID)
	if fences := rt.Metrics().MigrationFences.Load(); fences < 1 {
		t.Fatal("no migration-fence rejection recorded")
	}
}

// TestMigrateKeyAbortsOnDrainTimeout: a holder that outlives the drain
// budget aborts the migration — the fence lifts under a fresh epoch,
// placement is unchanged, and the abort counter ticks. Exclusion is
// never traded for progress.
func TestMigrateKeyAbortsOnDrainTimeout(t *testing.T) {
	rt := NewRouter(RouterConfig{
		Shards:         2,
		Base:           fastConfig(graph.Grid(2, 2)),
		MigrationDrain: 100 * time.Millisecond,
	})
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rt.Stop(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	byShard := rt.ShardKeys(catalog(32))
	key := byShard[0][0]

	holder, err := rt.Acquire(ctx, []string{key}, 30*time.Second, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	err = rt.MigrateKey(key, 1)
	if err == nil || !strings.Contains(err.Error(), "did not drain") {
		t.Fatalf("MigrateKey with stuck holder: err = %v, want drain-timeout abort", err)
	}
	if got := rt.Metrics().RebalancesAborted.Load(); got != 1 {
		t.Fatalf("RebalancesAborted = %d, want 1", got)
	}
	if got := rt.Metrics().Rebalances.Load(); got != 0 {
		t.Fatalf("Rebalances = %d, want 0", got)
	}
	if count, _ := rt.OverrideState(); count != 0 {
		t.Fatalf("override count after abort = %d, want 0", count)
	}
	if err := rt.Release(holder.SessionID); err != nil {
		t.Fatalf("holder release: %v", err)
	}
	// The fence is lifted: the key acquires again at its old home.
	g, err := rt.Acquire(ctx, []string{key}, time.Second, 0)
	if err != nil {
		t.Fatalf("acquire after abort: %v", err)
	}
	if !strings.HasPrefix(g.SessionID, "k0:") {
		t.Fatalf("post-abort grant %q not on shard 0 (placement must be unchanged)", g.SessionID)
	}
	_ = rt.Release(g.SessionID)
}

// TestRouterSpanAbortOnMigrationMidPrepare is the seed-pinned
// regression for the span/migration interaction: a span resolves its
// parts, blocks behind a holder on its first shard, and while it waits
// a migration moves its OTHER key to a new home (that key is idle, so
// the drain is instant and the commit deterministic). When the span
// finally collects both sub-leases it straddles two placement epochs —
// its shard-1 sub-lease is on a shard that no longer owns the key —
// so the pre-commit placement fence must abort it with ErrSpanAborted
// and roll back every sub-lease: zero residual leases on any shard.
func TestRouterSpanAbortOnMigrationMidPrepare(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	pair := spanningPair(t, rt) // pair[0] on shard 0, pair[1] on shard 1 (seed 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The holder pins the span's FIRST part (shard 0), so the span
	// blocks before it ever touches shard 1 — leaving pair[1] idle and
	// migratable with a deterministic, instant drain.
	held, err := rt.Acquire(ctx, []string{pair[0]}, 30*time.Second, 0)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	spanErr := make(chan error, 1)
	go func() {
		_, err := rt.Acquire(ctx, pair, 10*time.Second, 0)
		spanErr <- err
	}()
	// SpanAcquires ticks after partsFor resolved placement under gen0
	// and before the first sub-acquire blocks — once it reads 1, the
	// span is committed to its pre-migration decomposition.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().SpanAcquires.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("span never started")
		}
		time.Sleep(time.Millisecond)
	}

	if err := rt.MigrateKey(pair[1], 0); err != nil {
		t.Fatalf("MigrateKey(%q, 0): %v", pair[1], err)
	}
	if err := rt.Release(held.SessionID); err != nil {
		t.Fatalf("holder release: %v", err)
	}

	err = <-spanErr
	if !errors.Is(err, ErrSpanAborted) {
		t.Fatalf("span racing migration: err = %v, want ErrSpanAborted", err)
	}
	if !strings.Contains(err.Error(), "placement moved mid-span") {
		t.Fatalf("abort error %q does not name the migration fence", err)
	}
	m := rt.Metrics()
	if got := m.SpanRollbacks.Load(); got != 1 {
		t.Fatalf("SpanRollbacks = %d, want 1", got)
	}
	if got := m.SpanCommits.Load(); got != 0 {
		t.Fatalf("SpanCommits = %d, want 0", got)
	}
	// The acceptance bar: no residual sub-lease survives the abort.
	for s := 0; s < 2; s++ {
		if got := rt.Shard(s).ActiveLeases(); got != 0 {
			t.Fatalf("shard %d active leases after span abort = %d, want 0", s, got)
		}
	}
}

// TestRebalanceLoopMovesHotKey drives the whole feedback loop live: a
// skewed workload (one hot key plus filler on shard 0, nothing on
// shard 1) must make the controller sense the imbalance, fence and
// migrate the hot key to shard 1, and publish the move through
// /v1/status, /v1/ring, and the Prometheus counters.
func TestRebalanceLoopMovesHotKey(t *testing.T) {
	rt := NewRouter(RouterConfig{
		Shards: 2,
		Base:   fastConfig(graph.Grid(2, 2)),
		Rebalance: &control.Config{
			Interval:   20 * time.Millisecond,
			HalfLife:   10 * time.Second, // keep the drive's counts alive while polling
			Cooldown:   time.Hour,        // one decisive move, no churn
			Hysteresis: 1.2,
			MinLoad:    16,
		},
	})
	rt.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rt.Stop(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	byShard := rt.ShardKeys(catalog(64))
	if len(byShard[0]) < 6 {
		t.Fatalf("need 6 shard-0 keys, have %d", len(byShard[0]))
	}
	hot, filler := byShard[0][0], byShard[0][1:6]

	// 60 grants on the hot key + 50 spread over filler: shard 0 carries
	// everything, and the hot key (60) is well under the load gap
	// (~110), so Decide must move it rather than hold still.
	drive := func(key string) {
		g, err := rt.Acquire(ctx, []string{key}, time.Second, 0)
		if errors.Is(err, ErrWrongShard) {
			return // fenced mid-drive by the very migration we want
		}
		if err != nil {
			t.Fatalf("drive acquire %q: %v", key, err)
		}
		_ = rt.Release(g.SessionID)
	}
	for i := 0; i < 60; i++ {
		drive(hot)
	}
	for i := 0; i < 50; i++ {
		drive(filler[i%len(filler)])
	}

	deadline := time.Now().Add(10 * time.Second)
	for rt.Metrics().Rebalances.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never migrated; snapshot: %+v", rt.Controller().Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, ok := rt.RingInfo().Overrides[hot]; !ok || got != 1 {
		t.Fatalf("override table = %v, want %q -> 1", rt.RingInfo().Overrides, hot)
	}

	// The move is visible on every operator surface.
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Control == nil {
		t.Fatal("status report has no control section with rebalancing on")
	}
	if st.Control.OverrideCount != 1 {
		t.Fatalf("status OverrideCount = %d, want 1", st.Control.OverrideCount)
	}
	if st.Control.OverrideGen == 0 {
		t.Fatal("status OverrideGen = 0, want the committed generation")
	}
	if len(st.Control.Shards) != 2 {
		t.Fatalf("status control shards = %d, want 2", len(st.Control.Shards))
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		"dinerd_rebalance_total 1",
		"dinerd_rebalance_aborted_total 0",
		"dinerd_hotkey_fraction",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestAdminMigrateEndpoint: the manual migration switch runs the same
// protocol over HTTP — 200 with the post-commit RingInfo on success,
// 409 on a rejected move, 400 on a malformed request.
func TestAdminMigrateEndpoint(t *testing.T) {
	rt := startRouter(t, 2, fastConfig(graph.Grid(2, 2)))
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	byShard := rt.ShardKeys(catalog(32))
	key := byShard[0][0]

	post := func(path string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+path, nil)
		if err != nil {
			return nil, err
		}
		return http.DefaultClient.Do(req)
	}
	resp, err := post("/v1/admin/migrate?key=" + key + "&to=1")
	if err != nil {
		t.Fatalf("POST migrate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status = %d, want 200", resp.StatusCode)
	}
	if got := rt.RingInfo().Overrides[key]; got != 1 {
		t.Fatalf("override after HTTP migrate = %d, want 1", got)
	}
	// Re-migrating to the same home is a conflict, not a crash.
	resp, err = post("/v1/admin/migrate?key=" + key + "&to=1")
	if err != nil {
		t.Fatalf("POST duplicate migrate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate migrate status = %d, want 409", resp.StatusCode)
	}
	resp, err = post("/v1/admin/migrate?key=&to=1")
	if err != nil {
		t.Fatalf("POST bad migrate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-key migrate status = %d, want 400", resp.StatusCode)
	}
	// Request defects the router detects — a destination shard that
	// cannot exist, or one outside the ring — are 400s too, not 409s.
	resp, err = post("/v1/admin/migrate?key=" + key + "&to=7")
	if err != nil {
		t.Fatalf("POST out-of-range migrate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range migrate status = %d, want 400", resp.StatusCode)
	}
	if err := rt.RingLeave(1); err != nil {
		t.Fatalf("RingLeave(1): %v", err)
	}
	resp, err = post("/v1/admin/migrate?key=" + byShard[0][1] + "&to=1")
	if err != nil {
		t.Fatalf("POST departed-shard migrate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("departed-shard migrate status = %d, want 400", resp.StatusCode)
	}
}
