package lockservice

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcdp/internal/graph"
	"mcdp/internal/msgpass"
)

// TestRestartNodeFencesLeases: restarting a worker revokes every lease
// it granted — the client's later Release sees ErrNotFound, the fencing
// counters move, and the freed locks are acquirable again.
func TestRestartNodeFencesLeases(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// This two-bottle set has node 0 as its only candidate home, so the
	// lease is necessarily homed at the restart victim.
	res := []string{"edge:0-1", "edge:0-2"}
	g1, err := s.Acquire(ctx, res, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if g1.Node != 0 {
		t.Fatalf("lease homed at %d, want 0", g1.Node)
	}

	fenced, err := s.RestartNode(0, msgpass.RestartClean)
	if err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	if fenced != 1 {
		t.Fatalf("fenced %d leases, want 1", fenced)
	}
	if err := s.Release(g1.SessionID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("release of fenced lease: err = %v, want ErrNotFound", err)
	}
	if got := s.Metrics().LeasesFenced.Load(); got != 1 {
		t.Fatalf("LeasesFenced = %d, want 1", got)
	}
	if got := s.Metrics().NodeRestarts.Load(); got != 1 {
		t.Fatalf("NodeRestarts = %d, want 1", got)
	}

	// Fencing released the bottles: the same set is grantable again once
	// the revived node converges.
	g2, err := s.Acquire(ctx, res, 0)
	if err != nil {
		t.Fatalf("reacquire after fencing restart: %v", err)
	}
	if err := s.Release(g2.SessionID); err != nil {
		t.Fatal(err)
	}

	if _, err := s.RestartNode(99, msgpass.RestartClean); err == nil {
		t.Fatal("RestartNode(99) succeeded, want out-of-range error")
	}
}

// TestSupervisorRevivesCrashedNode: with Supervise configured, a killed
// worker comes back without any admin call and serves grants again.
func TestSupervisorRevivesCrashedNode(t *testing.T) {
	cfg := fastConfig(graph.Grid(2, 2))
	cfg.Supervise = &SupervisorConfig{
		CheckEvery:  5 * time.Millisecond,
		BackoffBase: 20 * time.Millisecond,
	}
	s := startServer(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const victim = graph.ProcID(0)
	if err := s.InjectCrash(victim, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, ctx, 5*time.Second, "supervisor to revive the victim", func() (bool, string) {
		snap := s.Network().Snapshot(victim)
		return !snap.Dead && snap.Incarnation > 0, snap.State.String()
	})
	if got := s.Metrics().NodeRestarts.Load(); got < 1 {
		t.Fatalf("NodeRestarts = %d, want >= 1", got)
	}

	// The revived node must arbitrate again: this set is homed at the
	// victim only.
	g1, err := s.Acquire(ctx, []string{"edge:0-1", "edge:0-2"}, 0)
	if err != nil {
		t.Fatalf("acquire homed at revived node: %v", err)
	}
	if err := s.Release(g1.SessionID); err != nil {
		t.Fatal(err)
	}
}

// TestClientBackoffJitterBounds: each retry delay lands in [d/2, d] for
// the capped exponential window d, and draws actually vary — the
// schedule is jittered, not a fixed ladder.
func TestClientBackoffJitterBounds(t *testing.T) {
	c := &Client{Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	c.jitter.Store(12345) // pin the stream so the test is reproducible
	for attempt := 0; attempt < 6; attempt++ {
		d := c.Backoff << uint(attempt)
		if d > c.MaxBackoff {
			d = c.MaxBackoff
		}
		distinct := map[time.Duration]bool{}
		for i := 0; i < 64; i++ {
			got := c.backoff(attempt)
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, d/2, d)
			}
			distinct[got] = true
		}
		if len(distinct) < 8 {
			t.Fatalf("attempt %d: only %d distinct delays in 64 draws; jitter missing", attempt, len(distinct))
		}
	}
}

// TestClientBackoffLazySeed: an unseeded client still jitters (the
// state self-seeds on first use) and stays within bounds.
func TestClientBackoffLazySeed(t *testing.T) {
	c := &Client{Backoff: 80 * time.Millisecond, MaxBackoff: time.Second}
	got := c.backoff(0)
	if got < 40*time.Millisecond || got > 80*time.Millisecond {
		t.Fatalf("backoff(0) = %v, want within [40ms, 80ms]", got)
	}
	if c.jitter.Load() == 0 {
		t.Fatal("jitter state not seeded after first use")
	}
}
