package lockservice

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RetryAfterError wraps a retryable rejection with an explicit backoff
// hint; the HTTP layer ships it as a Retry-After header. The lock
// service uses it for leaderless shards: the remaining blackout is
// known server-side (promotion in flight, or a TTL-drain hold-down with
// a computed end), so clients should wait that long instead of probing.
type RetryAfterError struct {
	After time.Duration
	Err   error
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After.Round(time.Millisecond))
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// errPromoting marks a promotion already in flight (internal).
var errPromoting = errors.New("lockservice: promotion already in progress")

// standbyLink bundles one standby with its replication plumbing: the
// primary-side replicator and the in-memory duplex pipe the stream
// rides on. The link survives promotions of OTHER replicas — a new
// primary restamps the replicator and keeps writing — and is torn down
// only when its own standby is promoted or the set stops.
type standbyLink struct {
	srv   *Server
	recv  *standby
	repl  *replicator
	connP net.Conn // primary-side end
	connS net.Conn // standby-side end
}

// promotion reports one completed failover for logs, metrics, and the
// bench harness.
type promotion struct {
	Shard   int
	Inc     uint64        // new incarnation
	Took    time.Duration // decision to serving (the MTTR numerator)
	Adopted int           // proven leases re-granted on the new primary
	Skipped int           // proven leases already expired at promotion
	Failed  int           // adoptions that did not complete (forces hold)
	Gap     bool          // the stream showed loss; unproven leases may exist
	Hold    time.Duration // TTL-drain hold-down applied (0 when none)
	Lag     uint64        // chosen standby's applied-sequence lag at decision
}

// replicaSet is one shard's primary plus its hot standbys. All lease
// traffic flows through it: it gates requests during blackouts
// (ErrLeaderless + Retry-After), fences grants that raced a promotion
// (ErrDeposed), and carries out supervisor-ordered promotions.
type replicaSet struct {
	shard      int
	ackTimeout time.Duration
	staleAfter time.Duration
	checkEvery time.Duration // retry hint while leaderless with no known end

	inc atomic.Uint64 // primary incarnation; bumped by every promotion

	mu        sync.Mutex     //lint:order rank lockservice 14
	primary   *Server        // guarded by mu
	handler   http.Handler   // guarded by mu: current primary's admin surface
	standbys  []*standbyLink // guarded by mu
	deposed   []*Server      // guarded by mu: former primaries, fenced out
	holdUntil time.Time      // guarded by mu: TTL-drain window after a lossy failover
	promoting bool           // guarded by mu
}

// newReplicaSet wires primary and standbys into one failover unit:
// every server gets the replication tap (only the current primary's
// events replicate), and each standby gets a live stream. ackTimeout
// bounds semi-synchronous grant replication; staleAfter is the stream
// silence beyond which a promotion assumes loss; checkEvery is the
// Retry-After hint during promotions.
func newReplicaSet(shardID int, primary *Server, standbys []*Server, ackTimeout, staleAfter, checkEvery time.Duration) *replicaSet {
	rs := &replicaSet{
		shard:      shardID,
		ackTimeout: ackTimeout,
		staleAfter: staleAfter,
		checkEvery: checkEvery,
		primary:    primary,
		handler:    primary.Handler(),
	}
	rs.inc.Store(1)
	tapFor := func(srv *Server) func(LeaseEvent) {
		return func(ev LeaseEvent) { rs.onLeaseEvent(srv, ev) }
	}
	primary.SetLeaseTap(tapFor(primary))
	for _, sb := range standbys {
		sb.SetLeaseTap(tapFor(sb))
		connP, connS := net.Pipe()
		link := &standbyLink{
			srv:   sb,
			recv:  newStandby(sb, rs.inc.Load),
			repl:  newReplicator(connP, 1),
			connP: connP,
			connS: connS,
		}
		link.recv.serve(connS)
		rs.standbys = append(rs.standbys, link)
	}
	return rs
}

// servers returns every server the set has ever owned (primary,
// standbys, deposed) — the teardown and ring-generation fan-out list.
func (rs *replicaSet) servers() []*Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := []*Server{rs.primary}
	for _, l := range rs.standbys {
		out = append(out, l.srv)
	}
	out = append(out, rs.deposed...)
	return out
}

// Primary returns the currently serving server.
func (rs *replicaSet) Primary() *Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.primary
}

// adminHandler returns the current primary's HTTP surface.
func (rs *replicaSet) adminHandler() http.Handler {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.handler
}

// incarnation returns the current primary incarnation.
func (rs *replicaSet) incarnation() uint64 { return rs.inc.Load() }

// standbyCount returns the number of live (unpromoted) standbys.
func (rs *replicaSet) standbyCount() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.standbys)
}

// maxLag returns the widest replication lag across standbys, in
// records.
func (rs *replicaSet) maxLag() uint64 {
	rs.mu.Lock()
	links := append([]*standbyLink(nil), rs.standbys...)
	rs.mu.Unlock()
	var max uint64
	for _, l := range links {
		if lg := l.repl.lag(); lg > max {
			max = lg
		}
	}
	return max
}

// holdRemaining returns how much of the TTL-drain hold-down is left.
func (rs *replicaSet) holdRemaining() time.Duration {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if d := time.Until(rs.holdUntil); d > 0 {
		return d
	}
	return 0
}

// settled reports whether a promotion past incarnation before has
// fully completed: the new primary is installed, adoption finished,
// and it is serving (the hold-down may still gate acquires).
func (rs *replicaSet) settled(before uint64) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.inc.Load() > before && !rs.promoting && !rs.primary.Halted()
}

// primaryHealthy is the shard supervisor's probe.
func (rs *replicaSet) primaryHealthy() bool {
	return rs.Primary().Healthy()
}

// killPrimary fail-stops the current primary (admin/chaos hook); the
// supervisor notices on its next checks and promotes.
func (rs *replicaSet) killPrimary() {
	rs.Primary().Halt()
}

// killStandby fail-stops standby i (chaos hook); promotions skip
// halted standbys. Reports whether such a standby existed.
func (rs *replicaSet) killStandby(i int) bool {
	rs.mu.Lock()
	var srv *Server
	if i >= 0 && i < len(rs.standbys) {
		srv = rs.standbys[i].srv
	}
	rs.mu.Unlock()
	if srv == nil {
		return false
	}
	srv.Halt()
	return true
}

// gate snapshots the serving state for one request: the primary and
// incarnation to use, or a positive wait when the shard is leaderless
// (promotion in flight or hold-down open).
func (rs *replicaSet) gate() (srv *Server, inc uint64, wait time.Duration) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.promoting {
		return nil, 0, rs.checkEvery
	}
	if d := time.Until(rs.holdUntil); d > 0 {
		return nil, 0, d
	}
	return rs.primary, rs.inc.Load(), 0
}

// acquire serves one acquire through the current primary with
// generation fencing: if a promotion swapped the primary while the
// request was in flight, the grant is surrendered on the server that
// minted it and the client gets ErrDeposed (409) — it re-resolves the
// ring and retries against the successor, so no client ever holds a
// lease only a deposed primary knows about.
//
//lint:lease acquire
func (rs *replicaSet) acquire(ctx context.Context, resources []string, ttl time.Duration) (*Grant, error) {
	srv, inc, wait := rs.gate()
	if wait > 0 {
		return nil, &RetryAfterError{After: wait, Err: ErrLeaderless}
	}
	g, err := srv.Acquire(ctx, resources, ttl)
	if err != nil {
		if errors.Is(err, ErrHalted) {
			// The primary died under the request and promotion has not
			// started yet; the supervisor's next checks will fix it.
			return nil, &RetryAfterError{After: rs.checkEvery, Err: ErrLeaderless}
		}
		return nil, err
	}
	if rs.inc.Load() != inc {
		_ = srv.Release(g.SessionID)
		return nil, ErrDeposed
	}
	return g, nil
}

// release routes a release to the current primary.
//
//lint:lease release
func (rs *replicaSet) release(sessionID string) error {
	err := rs.Primary().Release(sessionID)
	if errors.Is(err, ErrHalted) {
		return &RetryAfterError{After: rs.checkEvery, Err: ErrLeaderless}
	}
	return err
}

// renew routes a renewal to the current primary.
//
//lint:lease renew
func (rs *replicaSet) renew(sessionID string, ttl time.Duration) (time.Duration, error) {
	d, err := rs.Primary().Renew(sessionID, ttl)
	if errors.Is(err, ErrHalted) {
		return 0, &RetryAfterError{After: rs.checkEvery, Err: ErrLeaderless}
	}
	return d, err
}

// leasesOn counts the current primary's live leases naming resource —
// a migration's drain probe. Reads the serving primary, so a promotion
// mid-drain is probed against the successor that adopted the leases.
func (rs *replicaSet) leasesOn(resource string) int {
	return rs.Primary().LeasesOn(resource)
}

// noteSpan replicates a router span decision (prepare/commit/rollback)
// for this shard's sub-lease, so a promoted standby knows which spans
// were mid-protocol. Prepare and commit are semi-synchronous like
// grants; rollback is the safe direction.
func (rs *replicaSet) noteSpan(op byte, subLeaseID string) {
	rs.replicate(LeaseEvent{Op: op, ID: subLeaseID})
}

// onLeaseEvent is every member server's lease tap: only events from the
// current primary replicate — a deposed primary's tap goes nowhere,
// and its direct stream writes are refused by incarnation on the
// standby side.
func (rs *replicaSet) onLeaseEvent(src *Server, ev LeaseEvent) {
	rs.mu.Lock()
	isPrimary := src == rs.primary
	rs.mu.Unlock()
	if !isPrimary {
		return
	}
	rs.replicate(ev)
}

// replicate fans one record out to every standby stream, blocking on
// acks for unsafe-direction records (grant/renew/prepare/commit). A
// stream that repeatedly misses its ack budget is marked degraded and
// no longer waited on — it still receives the stream, but a dead
// standby must not tax every grant forever.
func (rs *replicaSet) replicate(ev LeaseEvent) {
	rs.mu.Lock()
	links := append([]*standbyLink(nil), rs.standbys...)
	rs.mu.Unlock()
	if len(links) == 0 {
		return
	}
	sync := ev.Op == ReplOpGrant || ev.Op == ReplOpRenew ||
		ev.Op == ReplOpSpanPrepare || ev.Op == ReplOpSpanCommit
	seqs := make([]uint64, len(links))
	for i, l := range links {
		seqs[i] = l.repl.send(ev)
	}
	if !sync {
		return
	}
	for i, l := range links {
		if l.repl.degraded.Load() {
			continue
		}
		if l.repl.wait(seqs[i], rs.ackTimeout) {
			l.repl.waitFails.Store(0)
			continue
		}
		if l.repl.waitFails.Add(1) >= degradedAfter {
			l.repl.degraded.Store(true)
		}
	}
}

// degradedAfter is how many consecutive ack-budget misses demote a
// stream from semi-synchronous to fire-and-forget.
const degradedAfter = 3

// heartbeat sends one liveness record on every stream, advertising the
// last issued sequence number and the primary's latest lease deadline.
// Called by the router's supervisor loop; a halted primary sends none
// (silence is the failure detector's signal).
func (rs *replicaSet) heartbeat() {
	rs.mu.Lock()
	srv := rs.primary
	links := append([]*standbyLink(nil), rs.standbys...)
	promoting := rs.promoting
	rs.mu.Unlock()
	if promoting || len(links) == 0 || !srv.Healthy() {
		return
	}
	var us uint64
	if dl := srv.maxLeaseDeadline(); !dl.IsZero() {
		us = uint64(dl.UnixMicro())
	}
	for _, l := range links {
		l.repl.heartbeat(us)
	}
}

// promote replaces the (presumed dead) primary with the freshest live
// standby under a bumped incarnation:
//
//  1. The standby with the highest applied sequence wins (halted
//     standbys are skipped — a deposed or killed server is never
//     revived into leadership).
//  2. The incarnation bumps first, so from this instant the old
//     primary's stream writes are refused (409) and its in-flight
//     grants fail the replicaSet's fence check.
//  3. Leases the standby can prove (replicated, unexpired) are adopted
//     under their original IDs; the adoption grants replicate to the
//     surviving standbys, doubling as the new primary's snapshot.
//  4. If the stream showed loss — heartbeat sequence gap, stale link,
//     or a failed adoption — new grants are held down until every
//     possibly-lost lease has TTL-drained (ErrLeaderless +
//     Retry-After until then). A clean stream means no hold-down: the
//     blackout is just the detection interval plus this promotion.
func (rs *replicaSet) promote() (*promotion, error) {
	start := time.Now()
	rs.mu.Lock()
	if rs.promoting {
		rs.mu.Unlock()
		return nil, errPromoting
	}
	best := -1
	var bestApplied uint64
	for i, l := range rs.standbys {
		if l.srv.Halted() {
			continue
		}
		if st := l.recv.state(); best == -1 || st.applied > bestApplied {
			best, bestApplied = i, st.applied
		}
	}
	if best == -1 {
		rs.mu.Unlock()
		return nil, fmt.Errorf("lockservice: shard %d has no live standby to promote", rs.shard)
	}
	chosen := rs.standbys[best]
	rs.standbys = append(rs.standbys[:best], rs.standbys[best+1:]...)
	rs.deposed = append(rs.deposed, rs.primary)
	rs.promoting = true
	survivors := append([]*standbyLink(nil), rs.standbys...)
	rs.mu.Unlock()

	newInc := rs.inc.Add(1)
	for _, l := range survivors {
		l.repl.setInc(newInc)
	}
	st := chosen.recv.state()
	lag := chosen.repl.lag()
	gap := st.gap
	if lag > 0 {
		// Issued-but-unacked records at decision time: they may be
		// enqueue drops, or sitting in a pipe this promotion is about to
		// close. Heartbeats cannot vouch for them (the stream is FIFO, so
		// a processed heartbeat never outruns a merely-slow record), so
		// they must be presumed lost.
		gap = true
	}
	if chosen.repl.dropped.Load() > 0 {
		// Any enqueue drop in this stream's lifetime drains. Deliberately
		// conservative (a later snapshot may have healed the hole): the
		// standby's contiguity check cannot witness a drop that landed on
		// the first record after an incarnation reset, and an extra TTL
		// drain merely delays recovery while a missed drop would break
		// exclusion.
		gap = true
	}
	if rs.staleAfter > 0 && !st.lastFrame.IsZero() && time.Since(st.lastFrame) > rs.staleAfter {
		gap = true
	}
	events := chosen.recv.snapshot()

	// Swap while promoting still gates acquires: the new primary must
	// not serve until adoption completes, but its tap must already
	// route (adoptions replicate to survivors).
	rs.mu.Lock()
	rs.primary = chosen.srv
	rs.handler = chosen.srv.Handler()
	rs.mu.Unlock()

	// The chosen standby's inbound stream is done: it IS the primary.
	chosen.repl.close()
	chosen.connP.Close()
	chosen.connS.Close()
	chosen.recv.join()

	res := &promotion{Shard: rs.shard, Inc: newInc, Lag: lag}
	now := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), chosen.srv.cfg.DefaultTimeout)
	for _, ev := range events {
		if !ev.Deadline.After(now) {
			res.Skipped++
			continue
		}
		//lint:allow leaselife adoption re-mints a lease the remote client already owns; release stays the client's obligation
		if err := chosen.srv.AdoptLease(ctx, ev.ID, ev.Resources, ev.Deadline); err != nil {
			res.Failed++
		} else {
			res.Adopted++
		}
	}
	cancel()
	if res.Failed > 0 {
		// A proven lease could not be re-granted: its holder still
		// believes in it, so treat it like a lost record and drain.
		gap = true
	}
	var hold time.Duration
	if gap {
		drain := time.Now().Add(chosen.srv.cfg.DefaultTTL)
		if st.drainTo.After(drain) {
			drain = st.drainTo
		}
		hold = time.Until(drain)
	}
	rs.mu.Lock()
	if hold > 0 {
		rs.holdUntil = time.Now().Add(hold)
	}
	rs.promoting = false
	rs.mu.Unlock()
	res.Gap = gap
	res.Hold = hold
	res.Took = time.Since(start)
	return res, nil
}

// stop tears down every replication stream (member servers are stopped
// by the Router, which owns them).
func (rs *replicaSet) stop() {
	rs.mu.Lock()
	links := append([]*standbyLink(nil), rs.standbys...)
	rs.standbys = nil
	rs.mu.Unlock()
	for _, l := range links {
		l.repl.close()
		l.connP.Close()
		l.connS.Close()
		l.recv.join()
	}
}
