// Package lockservice exposes the malicious-crash diners core as a
// long-running network lock service (`dinerd`): a Server runs one
// goroutine per worker node on the msgpass runtime, maps client
// Acquire/Release requests onto drinkers sessions, and grants a lock
// set only when the paper's enter guard has fired for the session's
// home node — so every grant inherits the paper's stabilization and
// crash failure locality 2 by construction.
//
// The resource model is the drinking-philosophers one: every edge of
// the worker topology carries one named lock (a bottle); a request
// names a set of resources, which map deterministically onto edges,
// and is served by a worker adjacent to all of them.
package lockservice

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"mcdp/internal/drinkers"
	"mcdp/internal/graph"
)

// DemoTopology returns the default worker topology shared by dinerd's
// `serve` default, the examples, and the tests: a 3x4 grid — 12
// workers, 17 locks.
func DemoTopology() *graph.Graph { return graph.Grid(3, 4) }

// ResourceMapper deterministically maps arbitrary resource names onto
// the bottles (edges) of a topology. Names of the form "edge:a-b"
// address the edge {a, b} directly when it exists; any other name is
// hashed (FNV-1a) onto an edge index. The mapping is pure, so every
// server, client, and load generator sharing the topology agrees on
// which workers arbitrate which resource.
type ResourceMapper struct {
	g *graph.Graph
}

// NewResourceMapper returns a mapper over g.
func NewResourceMapper(g *graph.Graph) *ResourceMapper {
	if g == nil {
		panic("lockservice: NewResourceMapper requires a graph")
	}
	if g.EdgeCount() == 0 {
		panic("lockservice: topology has no edges, so no lockable resources")
	}
	return &ResourceMapper{g: g}
}

// Graph returns the mapper's topology.
func (m *ResourceMapper) Graph() *graph.Graph { return m.g }

// EdgeFor maps a resource name to its edge and edge index.
func (m *ResourceMapper) EdgeFor(name string) (graph.Edge, int) {
	if e, ok := m.parseEdgeName(name); ok {
		idx := m.g.EdgeIndex(e.A, e.B)
		return e, idx
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	idx := int(h.Sum64() % uint64(m.g.EdgeCount()))
	return m.g.Edges()[idx], idx
}

// parseEdgeName recognizes the explicit "edge:a-b" form for an edge
// that exists in the topology.
func (m *ResourceMapper) parseEdgeName(name string) (graph.Edge, bool) {
	rest, ok := strings.CutPrefix(name, "edge:")
	if !ok {
		return graph.Edge{}, false
	}
	as, bs, ok := strings.Cut(rest, "-")
	if !ok {
		return graph.Edge{}, false
	}
	a, err1 := strconv.Atoi(as)
	b, err2 := strconv.Atoi(bs)
	if err1 != nil || err2 != nil {
		return graph.Edge{}, false
	}
	e := graph.EdgeBetween(graph.ProcID(a), graph.ProcID(b))
	if a < 0 || b < 0 || a >= m.g.N() || b >= m.g.N() || m.g.EdgeIndex(e.A, e.B) < 0 {
		return graph.Edge{}, false
	}
	return e, true
}

// EdgeName returns the canonical explicit name for an edge ("edge:a-b").
func EdgeName(e graph.Edge) string { return fmt.Sprintf("edge:%d-%d", e.A, e.B) }

// MapSession maps a resource set onto a drinkers session shape: the
// deduplicated bottle edge indices and the candidate home workers (the
// nodes adjacent to every mapped edge). It fails when the resources'
// edges share no common endpoint — such a set spans arbitration shards
// and must be split by the caller.
func (m *ResourceMapper) MapSession(resources []string) (bottles []int, homes []graph.ProcID, err error) {
	if len(resources) == 0 {
		return nil, nil, fmt.Errorf("lockservice: empty resource set")
	}
	seen := make(map[int]bool, len(resources))
	for _, r := range resources {
		_, idx := m.EdgeFor(r)
		if !seen[idx] {
			seen[idx] = true
			bottles = append(bottles, idx)
		}
	}
	sort.Ints(bottles)
	// Candidate homes: intersection of the edges' endpoint pairs.
	counts := make(map[graph.ProcID]int)
	for _, b := range bottles {
		e := m.g.Edges()[b]
		counts[e.A]++
		counts[e.B]++
	}
	for p, c := range counts {
		if c == len(bottles) {
			homes = append(homes, p)
		}
	}
	if len(homes) == 0 {
		return nil, nil, fmt.Errorf("lockservice: resources %v map to edges with no common worker", resources)
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i] < homes[j] })
	return bottles, homes, nil
}

// CatalogSessions adapts a catalog of named resources to the drinkers
// simulation layer: at each consultation it draws one name and, when
// the consulted process is a candidate home for it, starts a session
// needing the mapped bottle. It is the same resource-to-session mapping
// the dinerd server applies to client requests, packaged as a
// drinkers.SessionSource so the synchronous examples
// (examples/lockmanager) exercise identical shard placement. Not safe
// for concurrent use — the drinkers simulator is single-threaded.
type CatalogSessions struct {
	m     *ResourceMapper
	names []string
	prob  float64
	seed  int64
}

// NewCatalogSessions returns a session source drawing uniformly from
// names with probability prob per consultation.
func NewCatalogSessions(g *graph.Graph, names []string, prob float64, seed int64) *CatalogSessions {
	if len(names) == 0 {
		panic("lockservice: CatalogSessions needs a non-empty catalog")
	}
	return &CatalogSessions{m: NewResourceMapper(g), names: names, prob: prob, seed: seed}
}

var _ drinkers.SessionSource = (*CatalogSessions)(nil)

// Next implements drinkers.SessionSource. The draw is a deterministic
// hash of (seed, p, step) so identical runs replay identically.
func (c *CatalogSessions) Next(p graph.ProcID, step int64) []graph.ProcID {
	h := splitmix(uint64(c.seed) ^ uint64(p)*0x9e3779b97f4a7c15 ^ uint64(step)*0xbf58476d1ce4e5b9)
	if float64(h>>11)/float64(1<<53) >= c.prob {
		return nil
	}
	name := c.names[int((h>>7)%uint64(len(c.names)))]
	e, _ := c.m.EdgeFor(name)
	if p != e.A && p != e.B {
		return nil // p is not a candidate home for this resource
	}
	return []graph.ProcID{e.Other(p)}
}

// splitmix is the splitmix64 finalizer driving the deterministic
// catalog draws.
func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
