package lockservice

import (
	"context"
	"time"

	"mcdp/internal/wire"
)

// wireErr maps a service error onto the wire error space. The codes
// are the same HTTP status numbers statusFor assigns, so a rejection
// classifies identically no matter which transport carried it; 409
// rejections additionally carry the live ring generation so wire
// clients refresh placement without an extra round trip.
func wireErr(err error, ringGen uint64) *wire.Error {
	code := uint16(statusFor(err))
	e := &wire.Error{Code: code, Text: err.Error()}
	if code == 409 {
		e.RingGen = ringGen
	}
	return e
}

// acquireCtx applies the request's wait budget as a context deadline —
// the same translation the HTTP handlers perform for timeout_ms.
func acquireCtx(ctx context.Context, req wire.AcquireReq) (context.Context, context.CancelFunc) {
	if req.Timeout > 0 {
		return context.WithTimeout(ctx, req.Timeout)
	}
	return ctx, func() {}
}

// serverBackend adapts a standalone Server onto wire.Backend.
type serverBackend struct{ s *Server }

// WireBackend adapts the server for a wire listener: the framed binary
// transport and the HTTP facade both land on the same Acquire/Release/
// Renew core, so leases, TTL fencing, and metrics are shared.
func (s *Server) WireBackend() wire.Backend { return serverBackend{s} }

func (b serverBackend) Acquire(ctx context.Context, req wire.AcquireReq) (wire.GrantInfo, error) {
	ctx, cancel := acquireCtx(ctx, req)
	defer cancel()
	g, err := b.s.Acquire(ctx, req.Resources, req.TTL)
	if err != nil {
		return wire.GrantInfo{}, wireErr(err, b.s.RingGen())
	}
	return wire.GrantInfo{Session: g.SessionID, Node: int(g.Node), Wait: g.Wait}, nil
}

func (b serverBackend) Release(ctx context.Context, session string) error {
	if err := b.s.Release(session); err != nil {
		return wireErr(err, b.s.RingGen())
	}
	return nil
}

func (b serverBackend) Renew(ctx context.Context, session string, ttl time.Duration) (time.Duration, error) {
	granted, err := b.s.Renew(session, ttl)
	if err != nil {
		return 0, wireErr(err, b.s.RingGen())
	}
	return granted, nil
}

func (b serverBackend) RingGen() uint64 { return b.s.RingGen() }

func (b serverBackend) WaitBudget() time.Duration { return b.s.cfg.DefaultTimeout }

// routerBackend adapts a sharded Router onto wire.Backend.
type routerBackend struct{ r *Router }

// WireBackend adapts the router for a wire listener: shard routing,
// ring-generation assertions, and session-prefix release routing all
// behave exactly as they do under the HTTP facade.
func (r *Router) WireBackend() wire.Backend { return routerBackend{r} }

func (b routerBackend) Acquire(ctx context.Context, req wire.AcquireReq) (wire.GrantInfo, error) {
	ctx, cancel := acquireCtx(ctx, req)
	defer cancel()
	g, err := b.r.Acquire(ctx, req.Resources, req.TTL, req.RingGen)
	if err != nil {
		return wire.GrantInfo{}, wireErr(err, b.r.generation())
	}
	return wire.GrantInfo{Session: g.SessionID, Node: int(g.Node), Wait: g.Wait}, nil
}

func (b routerBackend) Release(ctx context.Context, session string) error {
	if err := b.r.Release(session); err != nil {
		return wireErr(err, b.r.generation())
	}
	return nil
}

func (b routerBackend) Renew(ctx context.Context, session string, ttl time.Duration) (time.Duration, error) {
	granted, err := b.r.Renew(session, ttl)
	if err != nil {
		return 0, wireErr(err, b.r.generation())
	}
	return granted, nil
}

func (b routerBackend) RingGen() uint64 { return b.r.generation() }

// WaitBudget reports shard 0's default acquire budget: every shard is
// built from the router's one Base config, so the budget is uniform.
func (b routerBackend) WaitBudget() time.Duration {
	// Every shard is built from the one Base config, so any primary's
	// post-default budget speaks for all (Base itself may hold zeros).
	return b.r.sets[0].Primary().cfg.DefaultTimeout
}
