package lockservice

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"

	"mcdp/internal/graph"
)

func TestEdgeForExplicitNames(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	e, idx := m.EdgeFor("edge:0-1")
	if e.A != 0 || e.B != 1 {
		t.Fatalf("edge:0-1 mapped to %v", e)
	}
	if idx < 0 {
		t.Fatalf("edge:0-1 has no index")
	}
	// Reversed endpoints normalize to the same edge.
	e2, idx2 := m.EdgeFor("edge:1-0")
	if e2 != e || idx2 != idx {
		t.Fatalf("edge:1-0 mapped to %v/%d, want %v/%d", e2, idx2, e, idx)
	}
}

func TestEdgeForHashFallback(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	// Non-adjacent pair: not a topology edge, so it hashes like any name.
	names := []string{"edge:0-5", "users-table", "build-lock", ""}
	for _, name := range names {
		e1, i1 := m.EdgeFor(name)
		e2, i2 := m.EdgeFor(name)
		if e1 != e2 || i1 != i2 {
			t.Fatalf("EdgeFor(%q) not deterministic: %v/%d vs %v/%d", name, e1, i1, e2, i2)
		}
		if i1 < 0 || i1 >= m.Graph().EdgeCount() {
			t.Fatalf("EdgeFor(%q) index %d out of range", name, i1)
		}
	}
}

func TestEdgeNameRoundTrip(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	for _, e := range m.Graph().Edges() {
		got, _ := m.EdgeFor(EdgeName(e))
		if got != e {
			t.Fatalf("round trip of %v via %q gave %v", e, EdgeName(e), got)
		}
	}
}

func TestMapSessionCommonHome(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	bottles, homes, err := m.MapSession([]string{"edge:0-1", "edge:0-4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(bottles) != 2 {
		t.Fatalf("bottles = %v, want 2", bottles)
	}
	if len(homes) != 1 || homes[0] != 0 {
		t.Fatalf("homes = %v, want [0]", homes)
	}
}

func TestMapSessionSingleEdgeTwoHomes(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	_, homes, err := m.MapSession([]string{"edge:5-6"})
	if err != nil {
		t.Fatal(err)
	}
	if len(homes) != 2 || homes[0] != 5 || homes[1] != 6 {
		t.Fatalf("homes = %v, want [5 6]", homes)
	}
}

func TestMapSessionDedupes(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	bottles, _, err := m.MapSession([]string{"edge:0-1", "edge:1-0", "edge:0-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(bottles) != 1 {
		t.Fatalf("bottles = %v, want a single deduplicated bottle", bottles)
	}
}

func TestMapSessionUnmappable(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	// Edges (0,1) and (6,7) share no endpoint: no worker is adjacent to
	// both, so the set cannot be arbitrated by one home.
	if _, _, err := m.MapSession([]string{"edge:0-1", "edge:6-7"}); err == nil {
		t.Fatal("disjoint edge set unexpectedly mapped")
	}
	if _, _, err := m.MapSession(nil); err == nil {
		t.Fatal("empty resource set unexpectedly mapped")
	}
}

func TestCatalogSessionsDeterministicAndIncident(t *testing.T) {
	g := DemoTopology()
	names := []string{"edge:0-1", "edge:5-6", "users-table", "build-lock"}
	a := NewCatalogSessions(g, names, 0.5, 42)
	b := NewCatalogSessions(g, names, 0.5, 42)
	fired := 0
	for step := int64(0); step < 200; step++ {
		for p := 0; p < g.N(); p++ {
			pa := a.Next(graph.ProcID(p), step)
			pb := b.Next(graph.ProcID(p), step)
			if len(pa) != len(pb) || (len(pa) == 1 && pa[0] != pb[0]) {
				t.Fatalf("seed-identical sources diverged at p=%d step=%d: %v vs %v", p, step, pa, pb)
			}
			if len(pa) == 1 {
				fired++
				if !g.HasEdge(graph.ProcID(p), pa[0]) {
					t.Fatalf("session partner %d not adjacent to home %d", pa[0], p)
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("catalog source never produced a session")
	}
}

// Property: every "edge:a-b" form and its reversal "edge:b-a" address
// the same lock, across the whole topology, including self-inverse
// round trips through EdgeName.
func TestEdgeNameReversalProperty(t *testing.T) {
	for _, g := range []*graph.Graph{DemoTopology(), graph.Ring(9), graph.Star(7)} {
		m := NewResourceMapper(g)
		for _, e := range g.Edges() {
			fwd := fmt.Sprintf("edge:%d-%d", e.A, e.B)
			rev := fmt.Sprintf("edge:%d-%d", e.B, e.A)
			ef, fi := m.EdgeFor(fwd)
			er, ri := m.EdgeFor(rev)
			if ef != er || fi != ri {
				t.Fatalf("%s: %q -> %v/%d but %q -> %v/%d", g.Name(), fwd, ef, fi, rev, er, ri)
			}
			if EdgeName(ef) != fwd {
				t.Fatalf("%s: canonical name of %v is %q, want %q", g.Name(), ef, EdgeName(ef), fwd)
			}
		}
	}
}

// Property: a name without a valid edge form maps to exactly the
// FNV-1a hash of its bytes mod the edge count — the wire-level contract
// every client, server, and load generator must agree on. quick.Check
// feeds arbitrary names; the reference computation is independent of
// the mapper.
func TestEdgeForFNVContractProperty(t *testing.T) {
	m := NewResourceMapper(DemoTopology())
	edges := m.Graph().EdgeCount()
	check := func(name string) bool {
		if _, ok := m.parseEdgeName(name); ok {
			return true // explicit edge form: addressed directly, not hashed
		}
		h := fnv.New64a()
		h.Write([]byte(name))
		want := int(h.Sum64() % uint64(edges))
		_, got := m.EdgeFor(name)
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The hash placement is part of the persistent protocol: clients built
// against older servers must keep agreeing on shard placement, so the
// concrete FNV-1a values are pinned here. If this test breaks, the
// mapping changed and every deployed client disagrees with the server.
func TestEdgeForFNVGoldenValues(t *testing.T) {
	m := NewResourceMapper(DemoTopology()) // 3x4 grid, 17 edges
	golden := map[string]int{
		"users-table": 3,
		"build-lock":  5,
		"":            13,
		"edge:0-5":    1, // not a grid edge, so it hashes like any name
	}
	for name, want := range golden {
		if _, got := m.EdgeFor(name); got != want {
			t.Errorf("EdgeFor(%q) = %d, want pinned %d", name, got, want)
		}
	}
}
