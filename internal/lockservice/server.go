package lockservice

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcdp/internal/core"
	"mcdp/internal/drinkers"
	"mcdp/internal/graph"
	"mcdp/internal/msgpass"
	"mcdp/internal/sim"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrUnmappable: the resource set spans arbitration shards (422).
	ErrUnmappable = errors.New("lockservice: unmappable resource set")
	// ErrQueueFull: every candidate home's queue is at capacity (429).
	ErrQueueFull = errors.New("lockservice: all candidate queues full")
	// ErrTimeout: the request's wait budget expired before a grant (408).
	ErrTimeout = errors.New("lockservice: acquire timed out")
	// ErrDraining: the server is shutting down (503).
	ErrDraining = errors.New("lockservice: server draining")
	// ErrUnserviceable: every candidate home worker is dead (503).
	ErrUnserviceable = errors.New("lockservice: no live worker can arbitrate this resource set")
	// ErrNotFound: unknown session ID (404).
	ErrNotFound = errors.New("lockservice: unknown session")
	// ErrWrongShard: the client routed with a stale ring generation (409).
	ErrWrongShard = errors.New("lockservice: stale ring generation")
	// ErrCrossShard: the resource set spans ring shards and the caller
	// required single-shard placement (422). The Router no longer
	// returns it from Acquire — spanning sets go through the span
	// protocol — but shardFor keeps the contract for callers that need
	// one owning shard.
	ErrCrossShard = errors.New("lockservice: resource set spans shards")
	// ErrSpanAborted: a cross-shard span lost a prepare lease before
	// commit and every sub-lease was rolled back (409, retryable — the
	// span left no residue, so a fresh attempt is safe).
	ErrSpanAborted = errors.New("lockservice: span aborted")
	// ErrDeparted: the node left the service; only a join readmits it.
	ErrDeparted = errors.New("lockservice: node has departed")
	// ErrHalted: the server was fail-stopped (a killed shard primary);
	// a supervisor-promoted standby will take over (503, retryable).
	ErrHalted = errors.New("lockservice: server halted")
	// ErrLeaderless: the shard has no serving primary right now —
	// promotion is in flight or the post-failover TTL-drain window is
	// open (503 with Retry-After, retryable).
	ErrLeaderless = errors.New("lockservice: shard leaderless, failover in progress")
	// ErrDeposed: the grant was produced by a primary that lost its
	// shard to a promoted standby mid-request; the lease was released
	// and the client must retry under the new ring generation (409,
	// retryable — nothing is held).
	ErrDeposed = errors.New("lockservice: primary deposed mid-request")
)

// Config tunes a Server.
type Config struct {
	// Graph is the worker topology (a lock per edge). Defaults to
	// DemoTopology().
	Graph *graph.Graph
	// ShardID identifies this server inside a sharded deployment; it
	// prefixes every session ID ("k<shard>:s...") so a Router can route
	// releases without a lookup table. 0 for a standalone server.
	ShardID int
	// Seed drives the msgpass substrate.
	Seed int64
	// QueueLimit bounds each worker's pending-session queue; overflowing
	// requests are rejected with ErrQueueFull (default 64).
	QueueLimit int
	// DefaultTimeout caps how long an Acquire without its own budget
	// waits for a grant (default 5s). MaxTimeout caps client-supplied
	// budgets (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultTTL is the lease time-to-live: a granted session not
	// released within its TTL is expired server-side so a crashed or
	// wedged client cannot hold a lock forever (default 30s).
	DefaultTTL time.Duration
	// TickEvery and EatEvents pass through to the msgpass substrate.
	TickEvery time.Duration
	EatEvents int
	// LossRate passes through to the msgpass substrate (frame loss).
	LossRate float64
	// Faults, when non-nil, passes a fault injector through to the
	// msgpass substrate (chaos campaigns against a live server).
	Faults msgpass.FaultInjector
	// Supervise, when non-nil, starts the self-healing supervisor: a
	// loop that health-checks workers and restarts crashed ones with
	// capped exponential backoff (see SupervisorConfig).
	Supervise *SupervisorConfig
	// History, when non-nil, records every session lifecycle event for
	// post-run mutual-exclusion and linearizability checking (tests and
	// the detsim harness; unbounded, so not for long-lived servers).
	History *History
}

// Grant is a successful acquisition: a lease on the requested
// resources.
type Grant struct {
	// SessionID identifies the lease for Release.
	SessionID string
	// Node is the worker that arbitrated (and granted) the session.
	Node graph.ProcID
	// Resources echoes the requested resource names.
	Resources []string
	// Wait is how long the request waited for its grant.
	Wait time.Duration
}

// lease is a live grant tracked for TTL expiry. home is the worker
// whose eating window backed the grant: when that worker restarts, the
// new incarnation's protocol state no longer vouches for the lease, so
// RestartNode fences every lease homed there.
type lease struct {
	id        string
	sess      *drinkers.Session
	resources []string
	home      graph.ProcID
	grantedAt time.Time
	deadline  time.Time
}

// Server is the dinerd core: the msgpass diners network, the drinkers
// session arbiter, and the lease bookkeeping. Create with NewServer,
// then Start; the HTTP surface is Handler().
type Server struct {
	cfg     Config
	g       *graph.Graph
	mapper  *ResourceMapper
	arb     *drinkers.Arbiter
	nw      *msgpass.Network
	metrics *Metrics

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex        //lint:order rank lockservice 20
	leases   map[string]*lease // guarded by mu
	draining bool              // guarded by mu
	started  bool              // guarded by mu
	startAt  time.Time         // guarded by mu

	idCtr   atomic.Uint64
	ringGen atomic.Uint64 // set by the Router on ring membership changes
	halted  atomic.Bool   // fail-stop flag: set by Halt, never cleared
	// adviseBackoff, when non-zero, overrides Supervise.BackoffBase —
	// the rebalance controller's derived tuning (nanoseconds).
	adviseBackoff atomic.Int64

	// tap, when non-nil, observes every lease-table mutation (grant,
	// release, renew, expire, fence) — the replication hook. Set before
	// Start via SetLeaseTap; called without mu held, so a tap may block
	// (semi-synchronous replication) without stalling other sessions'
	// bookkeeping.
	tap func(LeaseEvent)
}

// NewServer builds a server; it does not start any goroutines.
func NewServer(cfg Config) *Server {
	if cfg.Graph == nil {
		cfg.Graph = DemoTopology()
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		g:       cfg.Graph,
		mapper:  NewResourceMapper(cfg.Graph),
		arb:     drinkers.NewArbiter(cfg.Graph, cfg.QueueLimit),
		metrics: NewMetrics(),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		leases:  make(map[string]*lease),
	}
	if cfg.History != nil {
		cfg.History.Tap(s.arb)
	}
	hungry := make([]bool, cfg.Graph.N()) // nobody hungry until demand arrives
	s.nw = msgpass.NewNetwork(msgpass.Config{
		Graph:            cfg.Graph,
		Algorithm:        core.NewMCDP(),
		DiameterOverride: sim.SafeDepthBound(cfg.Graph),
		Hungry:           hungry,
		EatEvents:        cfg.EatEvents,
		TickEvery:        cfg.TickEvery,
		LossRate:         cfg.LossRate,
		Faults:           cfg.Faults,
		Seed:             cfg.Seed,
		OnSnapshot: func(p graph.ProcID, snap msgpass.Snapshot) {
			// Nudge the scheduler only on windows it can use; the pump
			// re-reads all state anyway, so coalescing loses nothing.
			if snap.State == core.Eating && !snap.Dead {
				s.nudge()
			}
		},
	})
	return s
}

// Graph returns the worker topology.
func (s *Server) Graph() *graph.Graph { return s.g }

// Mapper returns the server's resource mapper.
func (s *Server) Mapper() *ResourceMapper { return s.mapper }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Start launches the diners network, the scheduler, and the lease
// janitor. It may be called once.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("lockservice: Start called twice")
	}
	s.started = true
	s.startAt = time.Now()
	s.mu.Unlock()
	s.nw.Start()
	s.wg.Add(2)
	go s.pumpLoop()
	go s.janitor()
	if s.cfg.Supervise != nil {
		s.wg.Add(1)
		go s.superviseLoop()
	}
}

// nudge wakes the scheduler without ever blocking.
func (s *Server) nudge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pumpLoop turns eating windows into grants: every nudge, it pumps the
// arbiter with the current eating oracle and refreshes each worker's
// hunger to match its queue.
func (s *Server) pumpLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.wake:
		}
		s.arb.Pump(func(p graph.ProcID) bool {
			snap := s.nw.Snapshot(p)
			return snap.State == core.Eating && !snap.Dead
		})
		for p := 0; p < s.g.N(); p++ {
			pid := graph.ProcID(p)
			want := s.arb.HasPending(pid)
			if s.nw.Needs(pid) != want {
				s.nw.SetNeeds(pid, want)
				// Hunger changed: run the worker's event now so the new
				// demand is served at transport latency, not tick latency.
				s.nw.Wake(pid)
			}
		}
	}
}

// janitor expires leases past their TTL.
func (s *Server) janitor() {
	defer s.wg.Done()
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		now := time.Now()
		s.mu.Lock()
		var expired []*lease
		for id, l := range s.leases {
			if now.After(l.deadline) {
				expired = append(expired, l)
				delete(s.leases, id)
			}
		}
		s.mu.Unlock()
		// Map order must not reach the arbiter: release in lease-id order
		// so expiry cascades replay identically run to run.
		sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
		for _, l := range expired {
			s.arb.Release(l.sess)
			s.metrics.Expirations.Add(1)
			s.nudge()
			s.emit(LeaseEvent{Op: ReplOpExpire, ID: l.id})
		}
	}
}

// Acquire blocks until the resource set is granted, the context or the
// server's wait budget expires, or the server drains. ttl <= 0 uses the
// configured default lease TTL.
//
//lint:lease acquire
func (s *Server) Acquire(ctx context.Context, resources []string, ttl time.Duration) (*Grant, error) {
	s.metrics.AcquireRequests.Add(1)
	if s.halted.Load() {
		return nil, ErrHalted
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.metrics.RejectedDraining.Add(1)
		return nil, ErrDraining
	}
	bottles, homes, err := s.mapper.MapSession(resources)
	if err != nil {
		s.metrics.RejectedUnmappable.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrUnmappable, err)
	}
	// Place at a live candidate home with the shortest queue. Departed
	// homes are excluded even before their kill lands: a session queued
	// there would wait on a worker that is never coming back.
	var live []graph.ProcID
	for _, p := range homes {
		if !s.nw.Snapshot(p).Dead && !s.Departed(p) {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		s.metrics.RejectedUnserviceable.Add(1)
		return nil, fmt.Errorf("%w: homes %v all dead", ErrUnserviceable, homes)
	}
	var (
		sess    *drinkers.Session
		home    graph.ProcID
		lastErr error
	)
	for _, p := range sortByQueueDepth(live, s.arb) {
		sess, lastErr = s.arb.Submit(p, bottles)
		if lastErr == nil {
			home = p
			break
		}
	}
	if sess == nil {
		if errors.Is(lastErr, drinkers.ErrQueueFull) {
			s.metrics.RejectedQueueFull.Add(1)
			return nil, ErrQueueFull
		}
		return nil, lastErr
	}
	start := time.Now()
	s.nw.SetNeeds(home, true)
	s.nw.Wake(home)
	s.nudge()

	budget := s.cfg.DefaultTimeout
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl); d < budget || budget == 0 {
			budget = d
		}
	}
	if budget > s.cfg.MaxTimeout {
		budget = s.cfg.MaxTimeout
	}
	timer := time.NewTimer(budget)
	defer timer.Stop()

	abort := func(reject *atomic.Int64, err error) (*Grant, error) {
		if !s.arb.Cancel(sess) {
			// Granted in the race; nobody will ever release it but us.
			s.arb.Release(sess)
		}
		s.nw.SetNeeds(home, s.arb.HasPending(home))
		s.nudge()
		if reject != nil {
			reject.Add(1)
		}
		return nil, err
	}
	select {
	case <-sess.Granted():
	case <-ctx.Done():
		return abort(&s.metrics.RejectedTimeout, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err()))
	case <-timer.C:
		return abort(&s.metrics.RejectedTimeout, ErrTimeout)
	case <-s.done:
		return abort(&s.metrics.RejectedDraining, ErrDraining)
	}
	wait := time.Since(start)
	if ttl <= 0 {
		ttl = s.cfg.DefaultTTL
	}
	l := &lease{
		id:        fmt.Sprintf("k%d:s%08x-%d", s.cfg.ShardID, s.idCtr.Add(1), home),
		sess:      sess,
		resources: append([]string(nil), resources...),
		home:      home,
		grantedAt: time.Now(),
		deadline:  time.Now().Add(ttl),
	}
	s.mu.Lock()
	s.leases[l.id] = l
	s.mu.Unlock()
	if s.halted.Load() {
		// Halt landed between the grant and its publication: swallow the
		// lease rather than hand out a grant the promoted successor never
		// saw (the replication tap below has not run yet).
		s.mu.Lock()
		delete(s.leases, l.id)
		s.mu.Unlock()
		s.arb.Release(sess)
		return nil, ErrHalted
	}
	// Replicate before the client sees the grant: any client-visible
	// lease was offered to the standbys first (semi-synchronous taps
	// block here until acked or degraded).
	s.emit(LeaseEvent{Op: ReplOpGrant, ID: l.id, Resources: l.resources, Deadline: l.deadline})
	s.metrics.Grants.Add(1)
	s.metrics.WaitHist.Observe(wait.Seconds())
	return &Grant{SessionID: l.id, Node: home, Resources: l.resources, Wait: wait}, nil
}

// Release ends the lease with the given session ID.
//
//lint:lease release
func (s *Server) Release(sessionID string) error {
	if s.halted.Load() {
		return ErrHalted
	}
	s.mu.Lock()
	l, ok := s.leases[sessionID]
	if ok {
		delete(s.leases, sessionID)
	}
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.arb.Release(l.sess)
	s.metrics.Releases.Add(1)
	s.metrics.HoldHist.Observe(time.Since(l.grantedAt).Seconds())
	s.nudge()
	s.emit(LeaseEvent{Op: ReplOpRelease, ID: l.id})
	return nil
}

// Renew extends a live lease's TTL from now (ttl <= 0 uses the
// configured default) and returns the granted lifetime. Renewing a
// lease that has expired, been fenced, or was never granted reports
// ErrNotFound — the fencing rules are unchanged: a restart of the
// lease's home still revokes it no matter how recently it was renewed.
//
//lint:lease renew
func (s *Server) Renew(sessionID string, ttl time.Duration) (time.Duration, error) {
	if s.halted.Load() {
		return 0, ErrHalted
	}
	if ttl <= 0 {
		ttl = s.cfg.DefaultTTL
	}
	if ttl > s.cfg.MaxTimeout && s.cfg.MaxTimeout > 0 {
		// Leases cannot outlive the service's largest budget in one hop;
		// long-lived holders renew repeatedly instead.
		ttl = s.cfg.MaxTimeout
	}
	s.mu.Lock()
	l, ok := s.leases[sessionID]
	var deadline time.Time
	if ok {
		l.deadline = time.Now().Add(ttl)
		deadline = l.deadline
	}
	s.mu.Unlock()
	if !ok {
		return 0, ErrNotFound
	}
	s.metrics.Renewals.Add(1)
	s.emit(LeaseEvent{Op: ReplOpRenew, ID: sessionID, Deadline: deadline})
	return ttl, nil
}

// ActiveLeases returns the number of live leases.
func (s *Server) ActiveLeases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.leases)
}

// LeasesOn counts live leases naming resource — the drain probe a key
// migration polls until the source shard provably holds no grant on
// the moving key.
func (s *Server) LeasesOn(resource string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, l := range s.leases {
		for _, res := range l.resources {
			if res == resource {
				n++
				break
			}
		}
	}
	return n
}

// AdviseRestartBackoff sets the supervisor's restart-backoff base from
// the rebalance controller's observed-latency advice; zero restores
// the configured constant.
func (s *Server) AdviseRestartBackoff(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.adviseBackoff.Store(int64(d))
}

// InjectCrash triggers the malicious-crash fault machinery on a worker:
// steps > 0 gives the node that many arbitrary (garbage-spewing) events
// before it halts; steps <= 0 is a benign kill. This is the admin
// surface that lets locality-2 be demonstrated against a live server.
func (s *Server) InjectCrash(node graph.ProcID, steps int) error {
	if node < 0 || int(node) >= s.g.N() {
		return fmt.Errorf("lockservice: node %d out of range [0,%d)", node, s.g.N())
	}
	if steps > 0 {
		s.nw.CrashMaliciously(node, steps)
	} else {
		s.nw.Kill(node)
	}
	s.metrics.CrashesInjected.Add(1)
	s.nudge()
	return nil
}

// RestartNode revives a worker, clean or with arbitrary garbage state,
// returning how many leases it fenced. Leases homed at the node were
// granted by its pre-restart incarnation, whose eating window is gone;
// leaving them live would let a client hold a lock the protocol no
// longer backs, so they are revoked (fenced) before the node rejoins —
// a later Release on a fenced lease reports ErrNotFound.
func (s *Server) RestartNode(node graph.ProcID, mode msgpass.RestartMode) (int, error) {
	if node < 0 || int(node) >= s.g.N() {
		return 0, fmt.Errorf("lockservice: node %d out of range [0,%d)", node, s.g.N())
	}
	if s.Departed(node) {
		return 0, fmt.Errorf("%w: node %d (use join to readmit)", ErrDeparted, node)
	}
	fenced := s.fenceLeases(node)
	s.nw.Restart(node, mode)
	s.metrics.NodeRestarts.Add(1)
	s.nudge()
	return fenced, nil
}

// fenceLeases revokes every lease homed at node and returns the count.
// Called whenever the node's current incarnation ends (restart or
// leave): its eating windows no longer back those grants.
func (s *Server) fenceLeases(node graph.ProcID) int {
	s.mu.Lock()
	var fenced []*lease
	for id, l := range s.leases {
		if l.home == node {
			fenced = append(fenced, l)
			delete(s.leases, id)
		}
	}
	s.mu.Unlock()
	// Map order must not reach the arbiter (same rule as the janitor):
	// release in lease-id order so fencing replays identically.
	sort.Slice(fenced, func(i, j int) bool { return fenced[i].id < fenced[j].id })
	for _, l := range fenced {
		s.arb.Release(l.sess)
		s.metrics.LeasesFenced.Add(1)
		s.emit(LeaseEvent{Op: ReplOpFence, ID: l.id})
	}
	return len(fenced)
}

// Departed reports whether node has left the service.
func (s *Server) Departed(node graph.ProcID) bool {
	return int(node) < s.g.N() && s.nw.Departed(node)
}

// LeaveNode removes a worker from service: its leases are fenced and
// the node is spliced out of the conflict graph, so any edge tokens it
// held vanish with its edges instead of starving the neighbors waiting
// on them (a plain kill would pin those tokens forever). Unlike a
// crash, neither the supervisor nor the restart endpoint will revive
// it — only JoinNode readmits it. Returns how many leases were fenced.
func (s *Server) LeaveNode(node graph.ProcID) (int, error) {
	if node < 0 || int(node) >= s.g.N() {
		return 0, fmt.Errorf("lockservice: node %d out of range [0,%d)", node, s.g.N())
	}
	if s.Departed(node) {
		return 0, fmt.Errorf("%w: node %d", ErrDeparted, node)
	}
	if err := s.nw.RemoveProcess(node); err != nil {
		return 0, err
	}
	fenced := s.fenceLeases(node)
	s.metrics.NodeLeaves.Add(1)
	s.nudge()
	return fenced, nil
}

// JoinNode readmits a departed worker by splicing it back into the
// conflict graph next to its still-present topology neighbors, through
// the humble clean reboot: it comes back holding nothing, with priority
// ceded on every restored edge, so the join cannot disturb a session in
// progress. Edges to neighbors that are themselves departed return when
// those neighbors rejoin.
func (s *Server) JoinNode(node graph.ProcID) error {
	if node < 0 || int(node) >= s.g.N() {
		return fmt.Errorf("lockservice: node %d out of range [0,%d)", node, s.g.N())
	}
	if !s.Departed(node) {
		return fmt.Errorf("lockservice: node %d has not departed", node)
	}
	var neighbors []graph.ProcID
	for _, q := range s.g.Neighbors(node) {
		if !s.Departed(q) {
			neighbors = append(neighbors, q)
		}
	}
	if err := s.nw.JoinProcess(node, neighbors); err != nil {
		return err
	}
	s.metrics.NodeJoins.Add(1)
	s.nudge()
	return nil
}

// SetRingGen records the consistent-hash ring generation this server is
// serving under; the Router updates it on every ring membership change
// so /v1/status answers from any shard agree on the routing epoch.
func (s *Server) SetRingGen(gen uint64) { s.ringGen.Store(gen) }

// RingGen returns the last ring generation set by SetRingGen (0 for a
// standalone server).
func (s *Server) RingGen() uint64 { return s.ringGen.Load() }

// Stop drains the server: new acquires are rejected, pending waiters
// are woken with ErrDraining, and live leases are given until the
// context's deadline to be released before being dropped. It then
// stops the diners network. Stop is idempotent.
func (s *Server) Stop(ctx context.Context) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	started := s.started
	s.mu.Unlock()
	close(s.done)
	// Graceful drain: wait for clients to release their leases. A
	// halted server skips it — it was fenced out by a promotion, its
	// lease copies live on (were adopted by) the successor, and no
	// client can release through it anyway.
	for !s.halted.Load() {
		s.mu.Lock()
		n := len(s.leases)
		s.mu.Unlock()
		if n == 0 || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(20 * time.Millisecond):
		}
	}
	if started {
		s.nw.Stop()
		s.wg.Wait()
	}
}

// sortByQueueDepth orders candidate homes by current queue depth
// (shallowest first, ties by ID for determinism).
func sortByQueueDepth(homes []graph.ProcID, arb *drinkers.Arbiter) []graph.ProcID {
	out := append([]graph.ProcID(nil), homes...)
	depth := make(map[graph.ProcID]int, len(out))
	for _, p := range out {
		depth[p] = arb.QueueDepth(p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if depth[b] < depth[a] || (depth[b] == depth[a] && b < a) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

// Uptime returns time since Start (0 before Start).
func (s *Server) Uptime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.startAt.IsZero() {
		return 0
	}
	return time.Since(s.startAt)
}

// SetLeaseTap installs the lease-event observer (the replication hook).
// Must be set before Start and never changed after: the tap is read
// without synchronization on every lease mutation.
func (s *Server) SetLeaseTap(tap func(LeaseEvent)) { s.tap = tap }

// emit forwards a lease-table mutation to the tap, if any. Never called
// with s.mu held — a semi-synchronous tap blocks until the standby acks.
func (s *Server) emit(ev LeaseEvent) {
	if s.tap != nil {
		s.tap(ev)
	}
}

// Halt fail-stops the server: every subsequent API call is rejected
// with ErrHalted and Healthy reports false, but — unlike Stop — nothing
// is drained or torn down, so a "dead" primary keeps its goroutines and
// lease table exactly as a wedged process would. The supervisor promotes
// a standby in its place; the chaos harness and tests use Halt as the
// kill-primary switch. Halt is never cleared.
func (s *Server) Halt() {
	s.halted.Store(true)
	s.nudge()
}

// Halted reports whether the server was fail-stopped by Halt.
func (s *Server) Halted() bool { return s.halted.Load() }

// Healthy is the shard supervisor's liveness probe: false once the
// server is halted or draining.
func (s *Server) Healthy() bool {
	if s.halted.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// AdoptLease re-grants, under the lease's original session ID and
// deadline, a lease proven (replicated and unexpired) by a standby that
// is being promoted. Adoption runs on a fresh substrate whose arbiter
// holds nothing, and the adopted set is mutually conflict-free — the
// leases were held concurrently on the old primary, so their bottle
// sets are disjoint — which is why a bounded ctx suffices: every
// adoption is grantable without waiting on another lease.
//
// The session counter embedded in the ID is folded into idCtr so the
// new primary can never mint a duplicate of an adopted ID.
//
//lint:lease acquire
func (s *Server) AdoptLease(ctx context.Context, id string, resources []string, deadline time.Time) error {
	if s.halted.Load() {
		return ErrHalted
	}
	bottles, homes, err := s.mapper.MapSession(resources)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnmappable, err)
	}
	var live []graph.ProcID
	for _, p := range homes {
		if !s.nw.Snapshot(p).Dead && !s.Departed(p) {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return fmt.Errorf("%w: homes %v all dead", ErrUnserviceable, homes)
	}
	var (
		sess    *drinkers.Session
		home    graph.ProcID
		lastErr error
	)
	for _, p := range sortByQueueDepth(live, s.arb) {
		sess, lastErr = s.arb.Submit(p, bottles)
		if lastErr == nil {
			home = p
			break
		}
	}
	if sess == nil {
		return lastErr
	}
	s.nw.SetNeeds(home, true)
	s.nw.Wake(home)
	s.nudge()
	select {
	case <-sess.Granted():
	case <-ctx.Done():
		if !s.arb.Cancel(sess) {
			s.arb.Release(sess)
		}
		s.nw.SetNeeds(home, s.arb.HasPending(home))
		s.nudge()
		return fmt.Errorf("%w: adoption of %s: %v", ErrTimeout, id, ctx.Err())
	case <-s.done:
		if !s.arb.Cancel(sess) {
			s.arb.Release(sess)
		}
		return ErrDraining
	}
	if n, ok := sessionCounter(id); ok {
		for {
			cur := s.idCtr.Load()
			if cur >= n || s.idCtr.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	l := &lease{
		id:        id,
		sess:      sess,
		resources: append([]string(nil), resources...),
		home:      home,
		grantedAt: time.Now(),
		deadline:  deadline,
	}
	s.mu.Lock()
	s.leases[l.id] = l
	s.mu.Unlock()
	s.metrics.LeasesAdopted.Add(1)
	// Adoptions replicate as grants: to a surviving standby the adopted
	// lease is an idempotent upsert, so the stream doubles as the new
	// primary's state snapshot.
	s.emit(LeaseEvent{Op: ReplOpGrant, ID: l.id, Resources: l.resources, Deadline: l.deadline})
	return nil
}

// LeaseSnapshot returns the live lease table as grant events, sorted by
// lease ID (replay determinism). Promotion streams it to surviving
// standbys so they converge on the new primary's state.
func (s *Server) LeaseSnapshot() []LeaseEvent {
	s.mu.Lock()
	out := make([]LeaseEvent, 0, len(s.leases))
	for _, l := range s.leases {
		out = append(out, LeaseEvent{
			Op:        ReplOpGrant,
			ID:        l.id,
			Resources: append([]string(nil), l.resources...),
			Deadline:  l.deadline,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// maxLeaseDeadline returns the latest deadline across live leases
// (zero when the table is empty) — the TTL-drain bound heartbeats
// advertise to standbys.
func (s *Server) maxLeaseDeadline() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max time.Time
	for _, l := range s.leases { //lint:sorted max over values is order-insensitive
		if l.deadline.After(max) {
			max = l.deadline
		}
	}
	return max
}

// sessionCounter extracts the hex counter from a session ID of the form
// "k<shard>:s<counter hex>-<home>". ok is false for foreign formats.
func sessionCounter(id string) (uint64, bool) {
	i := strings.Index(id, ":s")
	if i < 0 {
		return 0, false
	}
	rest := id[i+2:]
	j := strings.IndexByte(rest, '-')
	if j < 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest[:j], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Network exposes the underlying msgpass network (tests and status).
func (s *Server) Network() *msgpass.Network { return s.nw }

// Arbiter exposes the underlying session arbiter (tests and status).
func (s *Server) Arbiter() *drinkers.Arbiter { return s.arb }
