package lockservice

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcdp/internal/graph"
	"mcdp/internal/msgpass"
)

func waitCond(t *testing.T, d time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestLeaveFencesLeasesAndReroutes: leaving a worker revokes the leases
// it granted, and the lock stays serviceable through the edge's other
// endpoint.
func TestLeaveFencesLeasesAndReroutes(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	g1, err := s.Acquire(ctx, []string{"edge:0-1"}, 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	fenced, err := s.LeaveNode(g1.Node)
	if err != nil {
		t.Fatalf("LeaveNode: %v", err)
	}
	if fenced != 1 {
		t.Fatalf("leave fenced %d leases, want 1", fenced)
	}
	if err := s.Release(g1.SessionID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("release of fenced lease: err = %v, want ErrNotFound", err)
	}
	if !s.Departed(g1.Node) {
		t.Fatal("leaver not marked departed")
	}
	if _, err := s.LeaveNode(g1.Node); !errors.Is(err, ErrDeparted) {
		t.Fatalf("double leave: err = %v, want ErrDeparted", err)
	}
	// The other endpoint of edge 0-1 must pick up arbitration.
	g2, err := s.Acquire(ctx, []string{"edge:0-1"}, 0)
	if err != nil {
		t.Fatalf("acquire after leave: %v", err)
	}
	if g2.Node == g1.Node {
		t.Fatalf("departed node %d granted a session", g2.Node)
	}
	s.Release(g2.SessionID)
}

// TestRestartRefusedOnDepartedNode: the restart path (admin and
// supervisor both go through RestartNode) must not resurrect a retired
// identity.
func TestRestartRefusedOnDepartedNode(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	if _, err := s.LeaveNode(3); err != nil {
		t.Fatalf("LeaveNode: %v", err)
	}
	if _, err := s.RestartNode(3, msgpass.RestartClean); !errors.Is(err, ErrDeparted) {
		t.Fatalf("RestartNode on departed: err = %v, want ErrDeparted", err)
	}
	if err := s.JoinNode(3); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	if s.Departed(3) {
		t.Fatal("join did not clear departure")
	}
	if err := s.JoinNode(3); err == nil {
		t.Fatal("join of a present node accepted")
	}
	waitCond(t, 5*time.Second, "rejoined node to revive", func() bool {
		return !s.Network().Snapshot(3).Dead
	})
}

// TestSupervisorDoesNotReviveDepartedNode pins the leave/supervisor
// race: a node that leaves while the supervisor's restart backoff timer
// for it is still pending must stay down. The supervisor checks
// departure before the backoff gate, so the pending attempt is
// abandoned rather than fired.
func TestSupervisorDoesNotReviveDepartedNode(t *testing.T) {
	cfg := fastConfig(graph.Grid(2, 2))
	cfg.Supervise = &SupervisorConfig{
		CheckEvery:  5 * time.Millisecond,
		BackoffBase: 400 * time.Millisecond,
	}
	s := startServer(t, cfg)
	m := s.Metrics()

	// First kill: the supervisor revives it and arms a 400ms backoff
	// window for node 0.
	if err := s.InjectCrash(0, 0); err != nil {
		t.Fatalf("InjectCrash: %v", err)
	}
	waitCond(t, 5*time.Second, "supervisor's first restart", func() bool {
		return m.NodeRestarts.Load() >= 1
	})
	// Second kill lands inside that window, so a restart attempt is now
	// pending on the backoff timer — and then the node leaves.
	s.InjectCrash(0, 0)
	if _, err := s.LeaveNode(0); err != nil {
		t.Fatalf("LeaveNode: %v", err)
	}
	restartsAtLeave := m.NodeRestarts.Load()

	// Outlast the backoff window with margin: the timer must never fire.
	time.Sleep(time.Second)
	if got := m.NodeRestarts.Load(); got != restartsAtLeave {
		t.Fatalf("supervisor restarted a departed node: restarts %d -> %d", restartsAtLeave, got)
	}
	if !s.Network().Snapshot(0).Dead || !s.Departed(0) {
		t.Fatal("departed node came back to life")
	}
	if got := m.NodeLeaves.Load(); got != 1 {
		t.Fatalf("NodeLeaves = %d, want 1", got)
	}

	// JoinNode remains the one readmission path, supervisor or not.
	if err := s.JoinNode(0); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	waitCond(t, 5*time.Second, "joined node to revive", func() bool {
		return !s.Network().Snapshot(0).Dead
	})
	if got := m.NodeJoins.Load(); got != 1 {
		t.Fatalf("NodeJoins = %d, want 1", got)
	}
}
