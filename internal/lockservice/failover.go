package lockservice

import (
	"fmt"
	"log"
	"time"
)

// FailoverConfig tunes shard-primary failure detection and standby
// promotion. The zero value gets the listed defaults when replicas are
// enabled.
type FailoverConfig struct {
	// CheckEvery is the supervisor's health-check cadence (default
	// 25ms). With Misses, it bounds detection latency: a killed primary
	// is noticed within CheckEvery*Misses.
	CheckEvery time.Duration
	// Misses is how many consecutive failed checks depose a primary
	// (default 3). One miss is too twitchy under scheduler jitter.
	Misses int
	// Cooloff is the per-shard hold-down after a promotion (default
	// 1s): a flapping shard gets at most one promotion per window, so
	// a crash loop cannot churn leadership faster than clients can
	// follow the ring generation.
	Cooloff time.Duration
	// AckTimeout bounds semi-synchronous grant replication (default
	// 250ms): a grant is withheld from the client until every live
	// standby acked or this budget lapsed.
	AckTimeout time.Duration
	// HeartbeatEvery is the replication heartbeat cadence (default
	// 50ms). Heartbeats carry the sequence watermark standbys use to
	// detect lost records.
	HeartbeatEvery time.Duration
	// StaleAfter is the stream silence beyond which a promotion assumes
	// records were lost and TTL-drains (default 500ms).
	StaleAfter time.Duration
	// Logf receives promotion decisions with reason and observed lag
	// (default log.Printf). Every promotion logs exactly once.
	Logf func(format string, args ...any)
}

// withDefaults fills unset knobs.
func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.CheckEvery <= 0 {
		c.CheckEvery = 25 * time.Millisecond
	}
	if c.Misses <= 0 {
		c.Misses = 3
	}
	if c.Cooloff <= 0 {
		c.Cooloff = time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 250 * time.Millisecond
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 500 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// superviseShards is the router's failure detector and promotion
// driver: every CheckEvery it heartbeats each shard's replication
// streams and counts missed health checks; Misses consecutive misses
// outside the cool-off window trigger a promotion and a ring-generation
// bump. It runs only when the router was built with replicas.
func (r *Router) superviseShards() {
	defer r.wg.Done()
	t := time.NewTicker(r.fo.CheckEvery)
	defer t.Stop()
	misses := make([]int, len(r.sets))
	cooloff := make([]time.Time, len(r.sets))
	lastHB := time.Time{}
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		}
		if now := time.Now(); now.Sub(lastHB) >= r.fo.HeartbeatEvery {
			lastHB = now
			for _, set := range r.sets {
				set.heartbeat()
			}
		}
		for i, set := range r.sets {
			if set.primaryHealthy() {
				misses[i] = 0
				continue
			}
			misses[i]++
			if misses[i] < r.fo.Misses {
				continue
			}
			if set.standbyCount() == 0 {
				// Nothing to promote onto; keep counting so a later
				// standby (never: membership is fixed) or operator sees
				// the sustained failure in logs once.
				if misses[i] == r.fo.Misses {
					r.fo.Logf("failover: shard %d primary unhealthy with no standby; shard stays dark", i)
				}
				continue
			}
			if time.Now().Before(cooloff[i]) {
				// Flapping shard: at most one promotion per cool-off
				// window.
				continue
			}
			lag := set.maxLag()
			res, err := set.promote()
			misses[i] = 0
			cooloff[i] = time.Now().Add(r.fo.Cooloff)
			if err != nil {
				r.fo.Logf("failover: shard %d promotion failed (reason=%d missed health checks, lag=%d records): %v",
					i, r.fo.Misses, lag, err)
				continue
			}
			r.mu.Lock()
			r.ring.Bump()
			r.pushRingGen()
			r.mu.Unlock()
			r.metrics.Failovers.Add(1)
			r.metrics.observePromotion(res.Took)
			r.fo.Logf("failover: shard %d promoted standby inc=%d reason=%d missed health checks lag=%d records adopted=%d skipped=%d failed=%d gap=%v hold=%s took=%s",
				i, res.Inc, r.fo.Misses, res.Lag, res.Adopted, res.Skipped, res.Failed, res.Gap,
				res.Hold.Round(time.Millisecond), res.Took.Round(time.Millisecond))
		}
	}
}

// Failover halts shard s's primary and returns once the supervisor has
// promoted a standby in its place (or the timeout lapses). It is the
// programmatic kill-primary switch used by the admin endpoint, the
// chaos harness, and the bench; the promotion itself still goes through
// the ordinary supervisor path, so what is measured is the real MTTR.
func (r *Router) Failover(s int, timeout time.Duration) error {
	if s < 0 || s >= len(r.sets) {
		return fmt.Errorf("lockservice: shard %d out of range [0,%d)", s, len(r.sets))
	}
	set := r.sets[s]
	if set.standbyCount() == 0 {
		return fmt.Errorf("lockservice: shard %d has no standby; refusing to kill the only primary", s)
	}
	before := set.incarnation()
	set.killPrimary()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if set.settled(before) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("lockservice: shard %d not promoted within %s", s, timeout)
}
