package lockservice

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"

	"mcdp/internal/stats"
)

// Metrics is dinerd's observability surface: plain atomic counters plus
// latency histograms, exported in Prometheus text exposition format by
// Server.WriteMetrics with no external dependency.
type Metrics struct {
	AcquireRequests       atomic.Int64
	Grants                atomic.Int64
	Releases              atomic.Int64
	Renewals              atomic.Int64
	Expirations           atomic.Int64
	RejectedQueueFull     atomic.Int64
	RejectedTimeout       atomic.Int64
	RejectedUnmappable    atomic.Int64
	RejectedUnserviceable atomic.Int64
	RejectedDraining      atomic.Int64
	CrashesInjected       atomic.Int64
	NodeRestarts          atomic.Int64
	NodeLeaves            atomic.Int64
	NodeJoins             atomic.Int64
	LeasesFenced          atomic.Int64
	LeasesAdopted         atomic.Int64

	// WaitHist observes hungry time: seconds from submission to grant.
	WaitHist *stats.LatencyHistogram
	// HoldHist observes lease hold time: seconds from grant to release.
	HoldHist *stats.LatencyHistogram
}

// NewMetrics returns a zeroed metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		WaitHist: stats.NewLatencyHistogram(stats.DefaultLatencyBounds()),
		HoldHist: stats.NewLatencyHistogram(stats.DefaultLatencyBounds()),
	}
}

// counterDef pairs a series name with its help string and value source.
type counterDef struct {
	name string
	help string
	val  func() int64
}

// WriteMetrics writes the full metrics surface — request counters,
// queue/lease gauges, per-node diners state, substrate message
// counters, and the wait/hold histograms — in Prometheus text format.
func (s *Server) WriteMetrics(w io.Writer) {
	m := s.metrics
	counters := []counterDef{
		{"dinerd_acquire_requests_total", "Acquire requests received.", m.AcquireRequests.Load},
		{"dinerd_grants_total", "Sessions granted.", m.Grants.Load},
		{"dinerd_releases_total", "Sessions released by clients.", m.Releases.Load},
		{"dinerd_lease_renewals_total", "Lease TTL extensions granted.", m.Renewals.Load},
		{"dinerd_lease_expirations_total", "Leases expired by the server-side TTL janitor.", m.Expirations.Load},
		{"dinerd_rejected_queue_full_total", "Acquires rejected for backpressure (429).", m.RejectedQueueFull.Load},
		{"dinerd_rejected_timeout_total", "Acquires that timed out waiting (408).", m.RejectedTimeout.Load},
		{"dinerd_rejected_unmappable_total", "Acquires naming resource sets with no common worker (422).", m.RejectedUnmappable.Load},
		{"dinerd_rejected_unserviceable_total", "Acquires whose candidate workers are all dead (503).", m.RejectedUnserviceable.Load},
		{"dinerd_rejected_draining_total", "Acquires rejected during drain (503).", m.RejectedDraining.Load},
		{"dinerd_crashes_injected_total", "Faults injected through the admin endpoint.", m.CrashesInjected.Load},
		{"dinerd_node_restarts_total", "Worker restarts (admin endpoint and supervisor).", m.NodeRestarts.Load},
		{"dinerd_node_leaves_total", "Workers removed from service (membership leave).", m.NodeLeaves.Load},
		{"dinerd_node_joins_total", "Departed workers readmitted (membership join).", m.NodeJoins.Load},
		{"dinerd_leases_fenced_total", "Leases revoked because their home worker restarted.", m.LeasesFenced.Load},
		{"dinerd_leases_adopted_total", "Replicated leases re-granted by a promoted standby.", m.LeasesAdopted.Load},
		{"dinerd_messages_sent_total", "Frames sent by the diners substrate.", s.nw.MessagesSent},
		{"dinerd_messages_dropped_total", "Frames dropped to full inboxes.", s.nw.MessagesDropped},
		{"dinerd_messages_lost_total", "Frames lost in transit (loss injection / partitions).", s.nw.MessagesLost},
		{"dinerd_transport_reconnects_total", "TCP edge reconnections after restarts or socket loss.", s.nw.Reconnects},
		{"dinerd_faults_dropped_total", "Frames dropped by the chaos fault injector.", func() int64 { d, _, _, _ := s.nw.FaultsInjected(); return d }},
		{"dinerd_faults_duplicated_total", "Frames duplicated by the chaos fault injector.", func() int64 { _, d, _, _ := s.nw.FaultsInjected(); return d }},
		{"dinerd_faults_corrupted_total", "Frames payload-corrupted by the chaos fault injector.", func() int64 { _, _, c, _ := s.nw.FaultsInjected(); return c }},
		{"dinerd_faults_delayed_total", "Channel stalls injected by the chaos fault injector.", func() int64 { _, _, _, d := s.nw.FaultsInjected(); return d }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.val())
	}

	depths := s.arb.QueueDepths()
	total := 0
	for _, d := range depths {
		total += d
	}
	fmt.Fprintf(w, "# HELP dinerd_queue_depth Pending sessions across all worker queues.\n# TYPE dinerd_queue_depth gauge\ndinerd_queue_depth %d\n", total)
	fmt.Fprintf(w, "# HELP dinerd_active_leases Currently granted, unreleased leases.\n# TYPE dinerd_active_leases gauge\ndinerd_active_leases %d\n", s.ActiveLeases())

	fmt.Fprintf(w, "# HELP dinerd_node_queue_depth Pending sessions per worker.\n# TYPE dinerd_node_queue_depth gauge\n")
	for p, d := range depths {
		fmt.Fprintf(w, "dinerd_node_queue_depth{node=%q} %d\n", strconv.Itoa(p), d)
	}
	table := s.nw.Table()
	fmt.Fprintf(w, "# HELP dinerd_node_state Diners state per worker (1=thinking 2=hungry 3=eating, 0=dead).\n# TYPE dinerd_node_state gauge\n")
	for p, snap := range table {
		v := int(snap.State)
		if snap.Dead {
			v = 0
		}
		fmt.Fprintf(w, "dinerd_node_state{node=%q} %d\n", strconv.Itoa(p), v)
	}
	fmt.Fprintf(w, "# HELP dinerd_node_eats_total Completed diners eating sessions per worker.\n# TYPE dinerd_node_eats_total counter\n")
	for p, snap := range table {
		fmt.Fprintf(w, "dinerd_node_eats_total{node=%q} %d\n", strconv.Itoa(p), snap.Eats)
	}
	writeHistogram(w, "dinerd_acquire_wait_seconds", "Hungry time: submission to grant.", m.WaitHist)
	writeHistogram(w, "dinerd_lease_hold_seconds", "Lease hold time: grant to release.", m.HoldHist)
}

// writeHistogram emits one histogram in Prometheus text format.
func writeHistogram(w io.Writer, name, help string, h *stats.LatencyHistogram) {
	bounds, cum, count, sum := h.Snapshot()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

// formatBound renders a bucket bound the way Prometheus clients expect.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// MetricNames returns the sorted names of all exported series families
// (used by tests and docs to keep the catalog honest).
func MetricNames() []string {
	names := []string{
		"dinerd_acquire_requests_total",
		"dinerd_grants_total",
		"dinerd_releases_total",
		"dinerd_lease_renewals_total",
		"dinerd_lease_expirations_total",
		"dinerd_rejected_queue_full_total",
		"dinerd_rejected_timeout_total",
		"dinerd_rejected_unmappable_total",
		"dinerd_rejected_unserviceable_total",
		"dinerd_rejected_draining_total",
		"dinerd_crashes_injected_total",
		"dinerd_node_restarts_total",
		"dinerd_node_leaves_total",
		"dinerd_node_joins_total",
		"dinerd_leases_fenced_total",
		"dinerd_leases_adopted_total",
		"dinerd_messages_sent_total",
		"dinerd_messages_dropped_total",
		"dinerd_messages_lost_total",
		"dinerd_transport_reconnects_total",
		"dinerd_faults_dropped_total",
		"dinerd_faults_duplicated_total",
		"dinerd_faults_corrupted_total",
		"dinerd_faults_delayed_total",
		"dinerd_queue_depth",
		"dinerd_active_leases",
		"dinerd_node_queue_depth",
		"dinerd_node_state",
		"dinerd_node_eats_total",
		"dinerd_acquire_wait_seconds",
		"dinerd_lease_hold_seconds",
	}
	sort.Strings(names)
	return names
}
