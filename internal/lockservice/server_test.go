package lockservice

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mcdp/internal/graph"
)

// fastConfig returns a server config tuned for tests: a tiny topology
// and a fast substrate tick so grants land in milliseconds.
func fastConfig(g *graph.Graph) Config {
	return Config{
		Graph:          g,
		Seed:           1,
		TickEvery:      300 * time.Microsecond,
		DefaultTimeout: 5 * time.Second,
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := NewServer(cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Stop(ctx)
	})
	return s
}

func TestAcquireReleaseCycle(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	g1, err := s.Acquire(ctx, []string{"edge:0-1"}, 0)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if g1.Node != 0 && g1.Node != 1 {
		t.Fatalf("granting node %d is not an endpoint of edge 0-1", g1.Node)
	}

	// While held, a rival acquire of the same resource must time out.
	rivalCtx, rivalCancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer rivalCancel()
	if _, err := s.Acquire(rivalCtx, []string{"edge:0-1"}, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("rival acquire of a held lock: err = %v, want ErrTimeout", err)
	}

	if err := s.Release(g1.SessionID); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := s.Release(g1.SessionID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double release: err = %v, want ErrNotFound", err)
	}

	// Released lock is acquirable again.
	g2, err := s.Acquire(ctx, []string{"edge:0-1"}, 0)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	if err := s.Release(g2.SessionID); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireUnmappable(t *testing.T) {
	s := startServer(t, fastConfig(DemoTopology()))
	ctx := context.Background()
	if _, err := s.Acquire(ctx, []string{"edge:0-1", "edge:6-7"}, 0); !errors.Is(err, ErrUnmappable) {
		t.Fatalf("err = %v, want ErrUnmappable", err)
	}
	if s.Metrics().RejectedUnmappable.Load() != 1 {
		t.Fatal("RejectedUnmappable counter not bumped")
	}
}

func TestAcquireQueueFull(t *testing.T) {
	cfg := fastConfig(graph.Grid(2, 2))
	cfg.QueueLimit = 1
	s := startServer(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// This two-bottle set has node 0 as its only candidate home, so one
	// queue takes all the pressure.
	res := []string{"edge:0-1", "edge:0-2"}
	g1, err := s.Acquire(ctx, res, 0)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer s.Release(g1.SessionID)

	// A second request parks in node 0's queue (the lock is held)...
	blockedErr := make(chan error, 1)
	blockedCtx, blockedCancel := context.WithCancel(ctx)
	defer blockedCancel()
	go func() {
		_, err := s.Acquire(blockedCtx, res, 0)
		blockedErr <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Arbiter().QueueDepth(0) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// ...so a third is rejected for backpressure.
	if _, err := s.Acquire(ctx, res, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: err = %v, want ErrQueueFull", err)
	}
	if s.Metrics().RejectedQueueFull.Load() != 1 {
		t.Fatal("RejectedQueueFull counter not bumped")
	}
	blockedCancel()
	if err := <-blockedErr; !errors.Is(err, ErrTimeout) {
		t.Fatalf("blocked acquire after cancel: err = %v, want ErrTimeout", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	g1, err := s.Acquire(ctx, []string{"edge:0-1"}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The janitor must reclaim the lease, making the lock acquirable
	// again without any client release.
	g2, err := s.Acquire(ctx, []string{"edge:0-1"}, 0)
	if err != nil {
		t.Fatalf("acquire after TTL expiry: %v", err)
	}
	if err := s.Release(g1.SessionID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("release of expired lease: err = %v, want ErrNotFound", err)
	}
	if s.Metrics().Expirations.Load() == 0 {
		t.Fatal("Expirations counter not bumped")
	}
	s.Release(g2.SessionID)
}

func TestDrainRejectsNewAcquires(t *testing.T) {
	s := NewServer(fastConfig(graph.Grid(2, 2)))
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.Stop(ctx)
	if _, err := s.Acquire(context.Background(), []string{"edge:0-1"}, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: err = %v, want ErrDraining", err)
	}
	s.Stop(ctx) // idempotent
}

func TestInjectCrashValidation(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	if err := s.InjectCrash(-1, 0); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := s.InjectCrash(99, 5); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := s.InjectCrash(3, 0); err != nil {
		t.Fatalf("valid kill rejected: %v", err)
	}
	if s.Metrics().CrashesInjected.Load() != 1 {
		t.Fatal("CrashesInjected counter not bumped")
	}
}

func TestAcquireUnserviceableWhenHomesDead(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.InjectCrash(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectCrash(1, 0); err != nil {
		t.Fatal(err)
	}
	// Both endpoints of edge 0-1 are dead. Poll with short per-attempt
	// budgets: the kill lands at each node's next event, so the first
	// attempts may still see a live snapshot and park until timeout.
	deadline := time.Now().Add(4 * time.Second)
	for {
		attemptCtx, attemptCancel := context.WithTimeout(ctx, 100*time.Millisecond)
		_, err := s.Acquire(attemptCtx, []string{"edge:0-1"}, 0)
		attemptCancel()
		if errors.Is(err, ErrUnserviceable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acquire on dead homes: err = %v, want ErrUnserviceable", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStatusReportShape(t *testing.T) {
	g := DemoTopology()
	s := startServer(t, fastConfig(g))
	rep := s.Status()
	if rep.Workers != g.N() || rep.Locks != g.EdgeCount() {
		t.Fatalf("status reports %d workers / %d locks, want %d / %d", rep.Workers, rep.Locks, g.N(), g.EdgeCount())
	}
	if len(rep.Edges) != g.EdgeCount() || len(rep.Nodes) != g.N() {
		t.Fatalf("status has %d edges / %d nodes", len(rep.Edges), len(rep.Nodes))
	}
	for _, name := range rep.Edges {
		if !strings.HasPrefix(name, "edge:") {
			t.Fatalf("edge name %q lacks canonical form", name)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	s := startServer(t, fastConfig(graph.Grid(2, 2)))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g1, err := s.Acquire(ctx, []string{"edge:0-1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(g1.SessionID)

	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	text := buf.String()
	names := MetricNames()
	if len(names) < 6 {
		t.Fatalf("metric catalog has %d families, want >= 6", len(names))
	}
	for _, name := range names {
		if !strings.Contains(text, "\n"+name) && !strings.HasPrefix(text, name) {
			t.Fatalf("metrics output missing family %q", name)
		}
	}
	for _, want := range []string{
		"dinerd_grants_total 1",
		"dinerd_releases_total 1",
		"dinerd_acquire_wait_seconds_count 1",
		`le="+Inf"`,
		"# TYPE dinerd_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}
