package drinkers

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"mcdp/internal/graph"
)

// alwaysEating is the most permissive oracle; safety must hold even
// under it (the central bottle accounting is what prevents conflicts).
func alwaysEating(graph.ProcID) bool { return true }

func TestArbiterSubmitValidation(t *testing.T) {
	g := graph.Ring(4)
	a := NewArbiter(g, 2)
	if _, err := a.Submit(99, []int{0}); err == nil {
		t.Error("out-of-range home accepted")
	}
	if _, err := a.Submit(0, []int{99}); err == nil {
		t.Error("out-of-range bottle accepted")
	}
	if _, err := a.Submit(0, nil); err == nil {
		t.Error("empty bottle set accepted")
	}
	// Edge not incident to home: ring(4) edge (2,3) vs home 0.
	far := g.EdgeIndex(2, 3)
	if _, err := a.Submit(0, []int{far}); err == nil {
		t.Error("non-incident bottle accepted")
	}
	// Duplicates dedupe.
	b := g.EdgeIndex(0, 1)
	s, err := a.Submit(0, []int{b, b, b})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(s.Bottles) != 1 {
		t.Errorf("duplicate bottles not deduplicated: %v", s.Bottles)
	}
}

func TestArbiterQueueLimit(t *testing.T) {
	g := graph.Ring(4)
	a := NewArbiter(g, 2)
	b := g.EdgeIndex(0, 1)
	for i := 0; i < 2; i++ {
		if _, err := a.Submit(0, []int{b}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if _, err := a.Submit(0, []int{b}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("third submit: got %v, want ErrQueueFull", err)
	}
	if got := a.QueueDepth(0); got != 2 {
		t.Errorf("QueueDepth(0) = %d, want 2", got)
	}
}

func TestArbiterGrantReleaseCycle(t *testing.T) {
	g := graph.Ring(4)
	a := NewArbiter(g, 8)
	b01 := g.EdgeIndex(0, 1)
	s, err := a.Submit(0, []int{b01})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !a.HasPending(0) {
		t.Error("HasPending(0) false with a queued session")
	}
	grants := a.Pump(alwaysEating)
	if len(grants) != 1 || grants[0] != s {
		t.Fatalf("Pump granted %v, want the submitted session", grants)
	}
	select {
	case <-s.Granted():
	default:
		t.Fatal("Granted channel not closed after grant")
	}
	if a.Status(s) != Drinking || a.Active() != 1 {
		t.Error("granted session not Drinking")
	}
	if a.Holder(b01) != 0 {
		t.Errorf("bottle holder = %d, want home 0", a.Holder(b01))
	}
	// The conflicting session at the other endpoint must wait.
	s2, err := a.Submit(1, []int{b01})
	if err != nil {
		t.Fatalf("Submit s2: %v", err)
	}
	if grants := a.Pump(alwaysEating); len(grants) != 0 {
		t.Fatalf("conflicting session granted while bottle in use: %v", grants)
	}
	if !a.Release(s) {
		t.Error("Release of a drinking session reported false")
	}
	if a.Release(s) {
		t.Error("double Release reported true")
	}
	if grants := a.Pump(alwaysEating); len(grants) != 1 || grants[0] != s2 {
		t.Fatalf("waiter not granted after release: %v", grants)
	}
	a.Release(s2)
	if a.Active() != 0 {
		t.Errorf("Active = %d after all releases, want 0", a.Active())
	}
}

func TestArbiterCancel(t *testing.T) {
	g := graph.Ring(4)
	a := NewArbiter(g, 8)
	b := g.EdgeIndex(0, 1)
	s1, _ := a.Submit(0, []int{b})
	s2, _ := a.Submit(0, []int{b})
	if !a.Cancel(s2) {
		t.Error("Cancel of a pending session reported false")
	}
	if a.QueueDepth(0) != 1 {
		t.Errorf("QueueDepth = %d after cancel, want 1", a.QueueDepth(0))
	}
	a.Pump(alwaysEating)
	if a.Cancel(s1) {
		t.Error("Cancel of a granted session reported true; caller must Release instead")
	}
	if !a.Release(s1) {
		t.Error("Release after failed Cancel reported false")
	}
}

func TestArbiterFIFOPerNode(t *testing.T) {
	g := graph.Ring(4)
	a := NewArbiter(g, 8)
	b01, b03 := g.EdgeIndex(0, 1), g.EdgeIndex(0, 3)
	s1, _ := a.Submit(0, []int{b01})
	s2, _ := a.Submit(0, []int{b03})
	// The head s1 drinks; s2 (disjoint bottles) becomes the new head and
	// is granted in the same eating window.
	grants := a.Pump(alwaysEating)
	if len(grants) != 2 || grants[0] != s1 || grants[1] != s2 {
		t.Fatalf("grants %v, want [s1 s2] in FIFO order", grants)
	}
	// A head blocked on a bottle blocks the whole node queue (FIFO, no
	// overtaking).
	s3, _ := a.Submit(1, []int{b01}) // conflicts with s1
	s4, _ := a.Submit(1, []int{g.EdgeIndex(1, 2)})
	if grants := a.Pump(alwaysEating); len(grants) != 0 {
		t.Fatalf("blocked head overtaken: %v", grants)
	}
	a.Release(s1)
	grants = a.Pump(alwaysEating)
	if len(grants) != 2 || grants[0] != s3 || grants[1] != s4 {
		t.Fatalf("after release, grants %v, want [s3 s4]", grants)
	}
}

// TestArbiterNeverConflicts hammers the arbiter from many goroutines
// under a randomized eating oracle and asserts the core invariant: no
// two simultaneously granted sessions ever share a bottle.
func TestArbiterNeverConflicts(t *testing.T) {
	g := graph.Grid(3, 4)
	a := NewArbiter(g, 16)
	var (
		mu      sync.Mutex
		using   = make(map[int]*Session) // bottle -> session, our shadow
		badness int
	)
	acquireShadow := func(s *Session) {
		mu.Lock()
		for _, b := range s.Bottles {
			if other, ok := using[b]; ok && other != s {
				badness++
			}
			using[b] = s
		}
		mu.Unlock()
	}
	releaseShadow := func(s *Session) {
		mu.Lock()
		for _, b := range s.Bottles {
			if using[b] == s {
				delete(using, b)
			}
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	pumperDone := make(chan struct{})
	// A pumper with a flapping random oracle.
	go func() {
		defer close(pumperDone)
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.Pump(func(p graph.ProcID) bool { return rng.Intn(3) == 0 })
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				home := graph.ProcID(rng.Intn(g.N()))
				idxs := g.IncidentEdgeIndices(home)
				var bottles []int
				for _, b := range idxs {
					if rng.Intn(2) == 0 {
						bottles = append(bottles, b)
					}
				}
				if len(bottles) == 0 {
					bottles = []int{idxs[rng.Intn(len(idxs))]}
				}
				s, err := a.Submit(home, bottles)
				if err != nil {
					continue // backpressure; fine
				}
				select {
				case <-s.Granted():
					acquireShadow(s)
					releaseShadow(s)
					a.Release(s)
				default:
					if !a.Cancel(s) {
						// Granted in the race: own it, then release.
						acquireShadow(s)
						releaseShadow(s)
						a.Release(s)
					}
				}
			}
		}(int64(w) + 10)
	}
	wg.Wait()
	close(stop)
	<-pumperDone
	if badness != 0 {
		t.Fatalf("%d conflicting grants observed", badness)
	}
	if a.Active() != 0 {
		t.Errorf("Active = %d after all workers finished, want 0", a.Active())
	}
}
