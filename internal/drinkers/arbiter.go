package drinkers

import (
	"errors"
	"fmt"
	"sync"

	"mcdp/internal/graph"
)

// ErrQueueFull reports that a home node's session queue is at capacity.
// Callers surface it as backpressure (HTTP 429 in the lock service).
var ErrQueueFull = errors.New("drinkers: session queue full")

// SessionStatus is a submitted session's lifecycle phase.
type SessionStatus int

// Session lifecycle: Pending (queued, waiting for its home node's
// exclusive window and its bottles), Drinking (granted, bottles held),
// Done (released or canceled).
const (
	Pending SessionStatus = iota
	Drinking
	Done
)

// Session is one submitted drinking session: a request to hold a set of
// bottles (edges) rooted at a home node. A Session is created by
// Arbiter.Submit and granted by Arbiter.Pump; the Granted channel closes
// exactly once, at grant time.
type Session struct {
	// Home is the node the session is queued at (an endpoint of every
	// bottle edge).
	Home graph.ProcID
	// Bottles are the needed edges, as indices into Graph.Edges(),
	// deduplicated and sorted.
	Bottles []int

	granted chan struct{}
	status  SessionStatus // guarded by mu (the arbiter's)
}

// Granted returns a channel that is closed when the session is granted.
func (s *Session) Granted() <-chan struct{} { return s.granted }

// Arbiter is the thread-safe session-submission hook onto the drinkers
// layer: it queues sessions per home node, and grants the head of a
// queue only while an external oracle says that node is inside its
// exclusive diners window (the paper's enter guard has fired and the
// node is Eating). Safety is enforced by construction — every bottle is
// attached to at most one Drinking session at a time — while liveness,
// fairness, and crash failure locality come from the diners substrate
// that drives the oracle: a node collects bottles only while eating, no
// two neighbors eat at once, so no two competing collectors ever play
// tug-of-war over a bottle.
//
// Unlike Sim (which owns a lock-step simulator), an Arbiter is substrate
// agnostic and safe for concurrent use; internal/lockservice drives one
// from the msgpass runtime's snapshot hook.
type Arbiter struct {
	// OnSubmit, OnGrant, OnRelease, and OnCancel, when non-nil, are
	// invoked synchronously under the arbiter's mutex at the matching
	// lifecycle transition, in the exact order the arbiter's own state
	// changes — which is what makes them usable as history taps: a
	// recorded grant can never appear to precede the submit or follow
	// the release it raced with. Hooks must be fast and must not call
	// back into the arbiter. Set them before sharing the arbiter across
	// goroutines (lockservice.History.Tap wires all four).
	OnSubmit  func(*Session)
	OnGrant   func(*Session)
	OnRelease func(*Session)
	OnCancel  func(*Session)

	mu         sync.Mutex
	g          *graph.Graph
	queueLimit int

	queues [][]*Session   // per node, FIFO; guarded by mu
	user   []*Session     // per edge: the Drinking session using the bottle, or nil; guarded by mu
	holder []graph.ProcID // per edge: which endpoint last collected the bottle; guarded by mu
	active int            // Drinking session count; guarded by mu
}

// NewArbiter returns an arbiter over g with the given per-node queue
// capacity (<= 0 means a default of 64).
func NewArbiter(g *graph.Graph, queueLimit int) *Arbiter {
	if g == nil {
		panic("drinkers: NewArbiter requires a graph")
	}
	if queueLimit <= 0 {
		queueLimit = 64
	}
	a := &Arbiter{
		g:          g,
		queueLimit: queueLimit,
		queues:     make([][]*Session, g.N()),
		user:       make([]*Session, g.EdgeCount()),
		holder:     make([]graph.ProcID, g.EdgeCount()),
	}
	for i, e := range g.Edges() {
		a.holder[i] = e.A
	}
	return a
}

// Submit queues a session for the given home node needing the given
// bottle edges (indices into Graph.Edges()). Every bottle must be
// incident to home. It returns ErrQueueFull when the home queue is at
// capacity.
//
//lint:lease acquire
func (a *Arbiter) Submit(home graph.ProcID, bottles []int) (*Session, error) {
	if home < 0 || int(home) >= a.g.N() {
		return nil, fmt.Errorf("drinkers: home node %d out of range", home)
	}
	seen := make(map[int]bool, len(bottles))
	var dedup []int
	for _, b := range bottles {
		if b < 0 || b >= a.g.EdgeCount() {
			return nil, fmt.Errorf("drinkers: bottle index %d out of range", b)
		}
		e := a.g.Edges()[b]
		if e.A != home && e.B != home {
			return nil, fmt.Errorf("drinkers: bottle %v not incident to home %d", e, home)
		}
		if !seen[b] {
			seen[b] = true
			dedup = append(dedup, b)
		}
	}
	if len(dedup) == 0 {
		return nil, errors.New("drinkers: session needs at least one bottle")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queues[home]) >= a.queueLimit {
		return nil, ErrQueueFull
	}
	s := &Session{Home: home, Bottles: dedup, granted: make(chan struct{})}
	a.queues[home] = append(a.queues[home], s)
	if a.OnSubmit != nil {
		a.OnSubmit(s)
	}
	return s, nil
}

// Cancel removes a still-Pending session from its queue and reports
// whether it did. A false return means the session was already granted
// (or previously finished): the caller owns it and must Release it.
func (a *Arbiter) Cancel(s *Session) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s.status != Pending {
		return false
	}
	q := a.queues[s.Home]
	for i, qs := range q {
		if qs == s {
			a.queues[s.Home] = append(q[:i], q[i+1:]...)
			s.status = Done
			if a.OnCancel != nil {
				a.OnCancel(s)
			}
			return true
		}
	}
	return false
}

// Release ends a Drinking session, detaching it from its bottles (the
// bottles stay at the home node until a collector takes them). It
// reports whether the session was actually drinking.
//
//lint:lease release
func (a *Arbiter) Release(s *Session) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s.status != Drinking {
		return false
	}
	for _, b := range s.Bottles {
		if a.user[b] == s {
			a.user[b] = nil
		}
	}
	s.status = Done
	a.active--
	if a.OnRelease != nil {
		a.OnRelease(s)
	}
	return true
}

// Status returns the session's current lifecycle phase.
func (a *Arbiter) Status(s *Session) SessionStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return s.status
}

// HasPending reports whether node p has queued (ungranted) sessions —
// exactly when p should be hungry in the diners substrate.
func (a *Arbiter) HasPending(p graph.ProcID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queues[p]) > 0
}

// QueueDepth returns the number of queued sessions at node p.
func (a *Arbiter) QueueDepth(p graph.ProcID) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queues[p])
}

// QueueDepths returns the per-node queued session counts.
func (a *Arbiter) QueueDepths() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, len(a.queues))
	for p, q := range a.queues {
		out[p] = len(q)
	}
	return out
}

// Active returns the number of currently Drinking sessions.
func (a *Arbiter) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// Holder returns which endpoint last collected the bottle on edge index
// b (the drinkers-layer bottle position; advisory, for status displays).
func (a *Arbiter) Holder(b int) graph.ProcID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.holder[b]
}

// Pump runs one scheduling pass: for every node that the eating oracle
// places inside its exclusive window, it tries to collect the head
// session's bottles and grants as many consecutive head sessions as
// collect. A bottle can be collected iff no Drinking session is
// attached to it; a Drinking neighbor's bottle is never stolen — that
// is the drinkers surrender rule, and it is what makes two overlapping
// grants that share a bottle impossible by construction. Pump returns
// the sessions granted in this pass (their Granted channels are already
// closed).
//
// The oracle may be slightly stale (the msgpass substrate publishes
// snapshots asynchronously); staleness can only delay grants or cause a
// harmless extra collection attempt, never a conflicting grant, because
// all bottle accounting happens under one mutex.
func (a *Arbiter) Pump(eating func(p graph.ProcID) bool) []*Session {
	a.mu.Lock()
	defer a.mu.Unlock()
	var grants []*Session
	for p := 0; p < a.g.N(); p++ {
		pid := graph.ProcID(p)
		if len(a.queues[p]) == 0 || !eating(pid) {
			continue
		}
		for len(a.queues[p]) > 0 {
			s := a.queues[p][0]
			if !a.collect(s) {
				break
			}
			for _, b := range s.Bottles {
				a.user[b] = s
				a.holder[b] = s.Home
			}
			s.status = Drinking
			a.active++
			close(s.granted)
			a.queues[p] = a.queues[p][1:]
			if a.OnGrant != nil {
				a.OnGrant(s)
			}
			grants = append(grants, s)
		}
	}
	return grants
}

// collect reports whether every bottle of s is free, moving free
// bottles to the home node as it checks (partial collection mirrors the
// drinkers reduction: a surrendered bottle travels even if the whole
// set is not yet available).
//
// requires mu
func (a *Arbiter) collect(s *Session) bool {
	all := true
	for _, b := range s.Bottles {
		if a.user[b] != nil {
			all = false
			continue
		}
		a.holder[b] = s.Home
	}
	return all
}
