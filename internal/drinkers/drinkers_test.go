package drinkers

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

func TestEveryoneDrinksFaultFree(t *testing.T) {
	g := graph.Ring(6)
	d := New(Config{Graph: g, Seed: 1})
	violations := 0
	for i := 0; i < 30000; i++ {
		d.Step()
		violations += len(d.ConflictingDrinkers())
	}
	for p, n := range d.Drinks() {
		if n == 0 {
			t.Errorf("process %d never drank", p)
		}
	}
	if violations != 0 {
		t.Errorf("conflicting drinkers observed %d times", violations)
	}
}

func TestDrinkersOnGridWithPartialSessions(t *testing.T) {
	g := graph.Grid(3, 3)
	d := New(Config{Graph: g, Sessions: NewRandomSessions(g, 0.5, 7), Seed: 7})
	violations := 0
	for i := 0; i < 40000; i++ {
		d.Step()
		violations += len(d.ConflictingDrinkers())
	}
	if violations != 0 {
		t.Errorf("conflicting drinkers observed %d times", violations)
	}
	for p, n := range d.Drinks() {
		if n == 0 {
			t.Errorf("process %d never drank on the grid", p)
		}
	}
}

func TestAllBottlesDegeneratesToDiners(t *testing.T) {
	g := graph.Ring(5)
	d := New(Config{Graph: g, Sessions: AllBottles{g}, Seed: 3})
	for i := 0; i < 20000; i++ {
		d.Step()
		// With full-bottle sessions, simultaneous neighbor drinking is
		// outright forbidden.
		for _, e := range g.Edges() {
			if d.Drinking(e.A) && d.Drinking(e.B) {
				t.Fatalf("neighbors %v drinking together under all-bottle sessions", e)
			}
		}
	}
	for p, n := range d.Drinks() {
		if n == 0 {
			t.Errorf("process %d never drank", p)
		}
	}
}

func TestDrinkersInheritFailureLocality(t *testing.T) {
	// A malicious crash in the diners substrate: drinkers at distance
	// >= 3 keep drinking, because arbitration failures stay local.
	g := graph.Path(8)
	d := New(Config{Graph: g, Sessions: AllBottles{g}, Seed: 5})
	d.Run(2000)
	d.World().CrashMaliciously(0, 20)
	d.Run(20000)
	mid := d.Drinks()
	d.Run(40000)
	final := d.Drinks()
	for p := 3; p < g.N(); p++ {
		if final[p] <= mid[p] {
			t.Errorf("drinker %d (distance %d from the crash) stopped drinking", p, p)
		}
	}
	violations := 0
	for i := 0; i < 5000; i++ {
		d.Step()
		violations += len(d.ConflictingDrinkers())
	}
	if violations != 0 {
		t.Errorf("conflicts after the crash: %d", violations)
	}
}

func TestBottleExclusivity(t *testing.T) {
	// Structural: each bottle has exactly one holder at all times.
	g := graph.Complete(4)
	d := New(Config{Graph: g, Seed: 9})
	for i := 0; i < 5000; i++ {
		d.Step()
		for _, e := range g.Edges() {
			h := d.Holder(e)
			if h != e.A && h != e.B {
				t.Fatalf("bottle %v held by non-endpoint %d", e, h)
			}
		}
	}
}

// Property: on random graphs with random session subsets, no two
// neighbors ever drink simultaneously from sessions sharing their
// bottle, and on connected graphs everyone eventually drinks.
func TestDrinkersSafetyProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(4+rng.Intn(6), 0.3, rng)
		d := New(Config{
			Graph:    g,
			Sessions: NewRandomSessions(g, 0.3+rng.Float64()*0.6, seed),
			Seed:     seed,
		})
		for i := 0; i < 8000; i++ {
			d.Step()
			if len(d.ConflictingDrinkers()) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without a graph must panic")
		}
	}()
	New(Config{})
}

func TestWorldExposesSubstrate(t *testing.T) {
	g := graph.Ring(4)
	d := New(Config{Graph: g, Seed: 1})
	if d.World() == nil {
		t.Fatal("World() returned nil")
	}
	d.World().Kill(2)
	d.Run(100)
	if !d.World().Dead(2) {
		t.Error("substrate kill did not stick")
	}
	if d.World().Status(2) != sim.Dead {
		t.Error("status mismatch")
	}
}
