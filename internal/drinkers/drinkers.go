// Package drinkers layers Chandy & Misra's drinking-philosophers problem
// (the paper's reference [5], the origin of its priority-graph idea) on
// top of the malicious-crash diners core, demonstrating downstream use:
// because conflict arbitration is delegated to the paper's algorithm, the
// drinkers inherit its stabilization and its crash failure locality.
//
// The problem: each edge carries a bottle; a drinking session needs some
// subset of the process's incident bottles (different sessions may need
// different subsets); two neighbors must never drink simultaneously from
// sessions that share a bottle.
//
// The classic reduction: a thirsty process becomes hungry in an
// underlying diners instance. Eating in diners is a temporary, exclusive
// license to collect bottles: an eater's requests beat its neighbors'
// (no two neighbors eat at once, so no two competing collectors clash),
// a non-drinking holder must surrender a requested bottle to an eating
// requester, and once the collector holds its session's bottles it
// drinks and releases the diners level. Diners liveness gives drinkers
// liveness; diners failure locality gives drinkers failure locality.
package drinkers

import (
	"fmt"
	"math/rand"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/workload"
)

// SessionSource decides, per process, whether it wants to start a
// drinking session at the given step and which incident bottles (by
// neighbor) the session needs. Returning an empty set means no thirst.
type SessionSource interface {
	// Next returns the bottle set (as neighbor IDs) for p's next session
	// at the given step; empty means p is not thirsty now.
	Next(p graph.ProcID, step int64) []graph.ProcID
}

// RandomSessions picks a uniformly random non-empty subset of incident
// bottles with probability prob per consultation.
type RandomSessions struct {
	g    *graph.Graph
	prob float64
	rng  *rand.Rand
}

// NewRandomSessions returns a stochastic session source.
func NewRandomSessions(g *graph.Graph, prob float64, seed int64) *RandomSessions {
	return &RandomSessions{g: g, prob: prob, rng: rand.New(rand.NewSource(seed))}
}

// Next implements SessionSource.
func (r *RandomSessions) Next(p graph.ProcID, _ int64) []graph.ProcID {
	if r.rng.Float64() >= r.prob {
		return nil
	}
	nbrs := r.g.Neighbors(p)
	if len(nbrs) == 0 {
		return nil
	}
	var set []graph.ProcID
	for _, q := range nbrs {
		if r.rng.Intn(2) == 0 {
			set = append(set, q)
		}
	}
	if len(set) == 0 {
		set = append(set, nbrs[r.rng.Intn(len(nbrs))])
	}
	return set
}

// AllBottles makes every session need every incident bottle (drinkers
// degenerate to diners).
type AllBottles struct {
	g *graph.Graph
}

// Next implements SessionSource.
func (a AllBottles) Next(p graph.ProcID, _ int64) []graph.ProcID {
	return a.g.Neighbors(p)
}

// Config describes a drinkers simulation.
type Config struct {
	// Graph is the topology (a bottle per edge). Required.
	Graph *graph.Graph
	// Sessions drives thirst. Defaults to NewRandomSessions(g, 0.8, Seed).
	Sessions SessionSource
	// Seed drives the underlying diners simulation.
	Seed int64
	// DiameterOverride passes through to the diners substrate (0 = safe
	// bound n-1).
	DiameterOverride int
	// DrinkSpan is how many diners steps a drinking session lasts
	// (default 3).
	DrinkSpan int64
}

// Sim is a running drinkers simulation over a diners substrate.
type Sim struct {
	g        *graph.Graph
	w        *sim.World
	sessions SessionSource
	span     int64

	thirsty  []bool
	need     [][]graph.ProcID // session bottle sets (neighbors)
	drinking []bool
	until    []int64 // step when the current drink ends
	holder   []graph.ProcID
	drinks   []int64
}

// New builds a drinkers simulation. The diners substrate runs the
// paper's algorithm with the safe depth bound.
func New(cfg Config) *Sim {
	if cfg.Graph == nil {
		panic("drinkers: Config.Graph is required")
	}
	if cfg.Sessions == nil {
		cfg.Sessions = NewRandomSessions(cfg.Graph, 0.8, cfg.Seed)
	}
	if cfg.DrinkSpan <= 0 {
		cfg.DrinkSpan = 3
	}
	bound := cfg.DiameterOverride
	if bound == 0 {
		bound = sim.SafeDepthBound(cfg.Graph)
	}
	n := cfg.Graph.N()
	d := &Sim{
		g:        cfg.Graph,
		sessions: cfg.Sessions,
		span:     cfg.DrinkSpan,
		thirsty:  make([]bool, n),
		need:     make([][]graph.ProcID, n),
		drinking: make([]bool, n),
		until:    make([]int64, n),
		holder:   make([]graph.ProcID, cfg.Graph.EdgeCount()),
		drinks:   make([]int64, n),
	}
	for i, e := range cfg.Graph.Edges() {
		d.holder[i] = e.A
	}
	// The diners layer's hunger IS the drinkers layer's thirst: a
	// process needs to eat exactly while it is thirsty and not yet
	// drinking. The closure reads this Sim's state; the whole engine is
	// single-threaded, as the model requires.
	d.w = sim.NewWorld(sim.Config{
		Graph:     cfg.Graph,
		Algorithm: core.NewMCDP(),
		Workload: workload.Func("thirst", func(p graph.ProcID, _ int64) bool {
			return d.thirsty[p] && !d.drinking[p]
		}),
		Seed:             cfg.Seed,
		DiameterOverride: bound,
	})
	return d
}

// World exposes the diners substrate (for fault injection and
// inspection).
func (d *Sim) World() *sim.World { return d.w }

// Drinks returns completed drinking sessions per process.
func (d *Sim) Drinks() []int64 { return append([]int64(nil), d.drinks...) }

// Thirsty reports whether p currently wants (or is in) a session.
func (d *Sim) Thirsty(p graph.ProcID) bool { return d.thirsty[p] }

// Drinking reports whether p is currently drinking.
func (d *Sim) Drinking(p graph.ProcID) bool { return d.drinking[p] }

// Holder returns which endpoint currently holds the bottle on edge e.
func (d *Sim) Holder(e graph.Edge) graph.ProcID {
	i := d.g.EdgeIndex(e.A, e.B)
	if i < 0 {
		panic(fmt.Sprintf("drinkers: no edge %v", e))
	}
	return d.holder[i]
}

// Step advances the simulation: one diners action, then the bottle
// rules. It reports false when the diners substrate has terminated and
// no thirst remains.
func (d *Sim) Step() bool {
	step := d.w.Steps()
	// New thirst arrives.
	for p := 0; p < d.g.N(); p++ {
		pid := graph.ProcID(p)
		if d.thirsty[p] || d.drinking[p] || d.w.Dead(pid) {
			continue
		}
		if set := d.sessions.Next(pid, step); len(set) > 0 {
			d.thirsty[p] = true
			d.need[p] = set
		}
	}
	// One diners action (idling if nothing is enabled: thirst may arrive
	// later).
	if _, ok := d.w.Step(); !ok {
		d.w.RunIdling(1)
	}
	d.applyBottleRules()
	return true
}

// Run advances n steps.
func (d *Sim) Run(n int64) {
	for i := int64(0); i < n; i++ {
		d.Step()
	}
}

// applyBottleRules performs the collect/drink/release transitions.
func (d *Sim) applyBottleRules() {
	now := d.w.Steps()
	for p := 0; p < d.g.N(); p++ {
		pid := graph.ProcID(p)
		if d.w.Dead(pid) {
			continue // a dead process freezes; its bottles stay put
		}
		// Finish an expired drink: release the session and the diners
		// level (the eater exits on its own once hunger is gone).
		if d.drinking[p] && now >= d.until[p] {
			d.drinking[p] = false
			d.thirsty[p] = false
			d.need[p] = nil
		}
		if !d.thirsty[p] || d.drinking[p] {
			continue
		}
		// Only an eating process may force bottle transfers: eating is
		// exclusive among neighbors, so at most one side of any bottle
		// collects at a time.
		if d.w.State(pid) != core.Eating {
			continue
		}
		if d.collect(pid) {
			d.drinking[p] = true
			d.until[p] = now + d.span
			d.drinks[p]++
		}
	}
}

// collect tries to gather all of p's needed bottles; it reports whether
// p now holds every one. A holder surrenders a bottle unless it is
// drinking from a session that needs it.
func (d *Sim) collect(p graph.ProcID) bool {
	all := true
	for _, q := range d.need[p] {
		i := d.g.EdgeIndex(p, q)
		if i < 0 {
			continue // session names a non-neighbor; ignore
		}
		if d.holder[i] == p {
			continue
		}
		if d.drinking[q] && d.needs(q, p) {
			all = false // the neighbor is drinking with it; wait
			continue
		}
		d.holder[i] = p // surrendered (q is not drinking with it)
	}
	return all
}

// needs reports whether q's current session includes the bottle shared
// with r.
func (d *Sim) needs(q, r graph.ProcID) bool {
	for _, x := range d.need[q] {
		if x == r {
			return true
		}
	}
	return false
}

// ConflictingDrinkers returns pairs of neighbors that are drinking
// simultaneously from sessions sharing their bottle — safety violations.
func (d *Sim) ConflictingDrinkers() []graph.Edge {
	var bad []graph.Edge
	for _, e := range d.g.Edges() {
		if d.drinking[e.A] && d.drinking[e.B] && d.needs(e.A, e.B) && d.needs(e.B, e.A) {
			bad = append(bad, e)
		}
	}
	return bad
}
