package trace

import (
	"strings"
	"testing"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/workload"
)

func TestToDOTStructure(t *testing.T) {
	g := graph.Ring(4)
	w := sim.NewWorld(sim.Config{
		Graph:     g,
		Algorithm: core.NewMCDP(),
		Workload:  workload.NeverHungry(),
	})
	w.SetState(1, core.Eating)
	w.SetState(2, core.Hungry)
	w.Kill(3)
	dot := ToDOT(w, nil)
	for _, want := range []string{
		"digraph priority {",
		"n0 [label=\"p0\\nT/0\"",
		"fillcolor=palegreen", // eater
		"fillcolor=khaki",     // hungry
		"fillcolor=gray",      // dead
		"n0 -> n1;",           // lower-ID ancestor arrows
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// One arrow per edge.
	if got := strings.Count(dot, "->"); got != g.EdgeCount() {
		t.Errorf("DOT has %d arrows, want %d", got, g.EdgeCount())
	}
}

func TestToDOTCustomNames(t *testing.T) {
	g := graph.Path(2)
	w := sim.NewWorld(sim.Config{Graph: g, Algorithm: core.NewMCDP()})
	dot := ToDOT(w, func(p graph.ProcID) string { return string(rune('a' + int(p))) })
	if !strings.Contains(dot, "label=\"a\\n") || !strings.Contains(dot, "label=\"b\\n") {
		t.Errorf("custom names missing:\n%s", dot)
	}
}

func TestToDOTMaliciousColor(t *testing.T) {
	g := graph.Ring(3)
	w := sim.NewWorld(sim.Config{Graph: g, Algorithm: core.NewMCDP()})
	w.CrashMaliciously(0, 5)
	dot := ToDOT(w, nil)
	if !strings.Contains(dot, "fillcolor=orange") {
		t.Errorf("malicious color missing:\n%s", dot)
	}
}
