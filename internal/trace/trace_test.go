package trace

import (
	"strings"
	"testing"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/workload"
)

func ringWorld(seed int64) *sim.World {
	return sim.NewWorld(sim.Config{
		Graph:     graph.Ring(5),
		Algorithm: core.NewMCDP(),
		Workload:  workload.AlwaysHungry(),
		Seed:      seed,
	})
}

func TestRecorderCountsEats(t *testing.T) {
	w := ringWorld(1)
	r := NewRecorder(5, false)
	w.Observe(r)
	w.Run(4000)
	if r.TotalEats() == 0 {
		t.Fatal("no eats recorded on an always-hungry ring")
	}
	var sum int64
	for p := 0; p < 5; p++ {
		sum += r.Eats(graph.ProcID(p))
	}
	if sum != r.TotalEats() {
		t.Errorf("per-process eats sum %d != total %d", sum, r.TotalEats())
	}
}

func TestRecorderLatencies(t *testing.T) {
	w := ringWorld(2)
	r := NewRecorder(5, false)
	w.Observe(r)
	w.Run(4000)
	lats := r.Latencies()
	if len(lats) == 0 {
		t.Fatal("no latencies recorded")
	}
	for _, l := range lats {
		if l <= 0 {
			t.Errorf("non-positive latency %d", l)
		}
	}
	// Per-process latencies partition the global list.
	var n int
	for p := 0; p < 5; p++ {
		n += len(r.ProcLatencies(graph.ProcID(p)))
	}
	if n != len(lats) {
		t.Errorf("per-process latency count %d != global %d", n, len(lats))
	}
}

func TestRecorderEventsKept(t *testing.T) {
	w := ringWorld(3)
	r := NewRecorder(5, true)
	w.Observe(r)
	w.Run(50)
	events := r.Events()
	if len(events) != 50 {
		t.Fatalf("recorded %d events, want 50", len(events))
	}
	for i, ev := range events {
		if ev.Step != int64(i) {
			t.Errorf("event %d has step %d", i, ev.Step)
		}
		if ev.ActionName == "" {
			t.Errorf("event %d has empty action name", i)
		}
	}
}

func TestRecorderEventsDiscardedByDefault(t *testing.T) {
	w := ringWorld(3)
	r := NewRecorder(5, false)
	w.Observe(r)
	w.Run(50)
	if r.Events() != nil {
		t.Error("events kept despite keepEvents=false")
	}
}

func TestRecorderLeaveKeepsWaitOpen(t *testing.T) {
	// Wire a scenario with a forced leave: 1 hungry with hungry ancestor
	// 0 must leave; its wait should stay open and close when it finally
	// eats.
	g := graph.Path(2)
	w := sim.NewWorld(sim.Config{
		Graph:     g,
		Algorithm: core.NewMCDP(),
		Workload:  workload.AlwaysHungry(),
		Seed:      4,
	})
	r := NewRecorder(2, false)
	w.Observe(r)
	w.Run(500)
	// With always-hungry both eat eventually; latencies exist and some
	// exceed 1 step (waits across leave/rejoin cycles are preserved).
	if r.TotalEats() == 0 {
		t.Fatal("nobody ate")
	}
}

func TestStarvedSince(t *testing.T) {
	// Kill 0 while eating as ancestor; 1 will be hungry at some point
	// then park. StarvedSince should report anyone currently hungry.
	w := ringWorld(5)
	w.SetState(0, core.Eating)
	w.Kill(0)
	r := NewRecorder(5, false)
	w.Observe(r)
	w.Run(3000)
	for p, s := range r.StarvedSince() {
		if w.State(p) != core.Hungry {
			t.Errorf("StarvedSince lists %d but its state is %v", p, w.State(p))
		}
		if s < 0 || s >= 3000 {
			t.Errorf("bogus hunger start %d", s)
		}
	}
}

func TestFormatState(t *testing.T) {
	w := ringWorld(6)
	w.SetState(1, core.Eating)
	w.Kill(2)
	w.CrashMaliciously(3, 5)
	s := FormatState(w)
	for _, want := range []string{"1:E/0", "[2:", "*3:", "edges:"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatState missing %q in %q", want, s)
		}
	}
}

func TestFormatEvents(t *testing.T) {
	events := []Event{
		{Step: 3, Proc: 1, ActionName: "join", State: core.Hungry},
		{Step: 4, Proc: 2, ActionName: "enter", State: core.Eating},
	}
	out := FormatEvents(events, nil)
	if !strings.Contains(out, "join") || !strings.Contains(out, "p1") {
		t.Errorf("FormatEvents output unexpected: %q", out)
	}
	named := FormatEvents(events, func(p graph.ProcID) string { return string(rune('a' + int(p))) })
	if !strings.Contains(named, "b") {
		t.Errorf("named FormatEvents output unexpected: %q", named)
	}
}

func TestSessionCounts(t *testing.T) {
	w := ringWorld(7)
	r := NewRecorder(5, false)
	w.Observe(r)
	w.Run(2000)
	counts := r.SessionCounts()
	if len(counts) != 5 {
		t.Fatalf("SessionCounts returned %d rows", len(counts))
	}
	for i, c := range counts {
		if int(c.Proc) != i {
			t.Errorf("row %d has proc %d", i, c.Proc)
		}
		if c.Eats != r.Eats(c.Proc) {
			t.Errorf("row %d eats mismatch", i)
		}
	}
}
