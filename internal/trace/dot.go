package trace

import (
	"fmt"
	"strings"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

// ToDOT renders a world state as a Graphviz digraph: one node per
// process labeled with its name, dining state, and depth; one arrow per
// edge from the priority holder (ancestor) to the other endpoint. Dead
// processes are gray, malicious ones orange, eaters green, hungry
// yellow. names may be nil for default p0..pN-1 labels.
func ToDOT(w *sim.World, names func(graph.ProcID) string) string {
	if names == nil {
		names = func(p graph.ProcID) string { return fmt.Sprintf("p%d", p) }
	}
	var b strings.Builder
	b.WriteString("digraph priority {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=circle, style=filled];\n")
	g := w.Graph()
	for p := 0; p < g.N(); p++ {
		pid := graph.ProcID(p)
		fill := "white"
		switch {
		case w.Status(pid) == sim.Dead:
			fill = "gray"
		case w.Status(pid) == sim.Malicious:
			fill = "orange"
		case w.State(pid) == core.Eating:
			fill = "palegreen"
		case w.State(pid) == core.Hungry:
			fill = "khaki"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%v/%d\", fillcolor=%s];\n",
			p, names(pid), w.State(pid), w.Depth(pid), fill)
	}
	for _, e := range g.Edges() {
		anc := w.Priority(e)
		desc := e.Other(anc)
		fmt.Fprintf(&b, "  n%d -> n%d;\n", anc, desc)
	}
	b.WriteString("}\n")
	return b.String()
}
