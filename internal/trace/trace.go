// Package trace records executions: per-step events, per-process dining
// session accounting (hungry→eating latency, eat counts), and a
// Figure-2-style pretty printer for small scenarios.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

// Event is one executed step.
type Event struct {
	// Step is the step number.
	Step int64
	// Proc is the process that acted.
	Proc graph.ProcID
	// Action is the executed action (sim.MaliciousAction for a malicious
	// step).
	Action core.ActionID
	// ActionName is the action's display name.
	ActionName string
	// State is the actor's dining state after the step.
	State core.State
}

// Recorder is a sim.Observer that accumulates events and session
// statistics. The zero value is not useful; use NewRecorder.
type Recorder struct {
	keepEvents bool
	events     []Event

	hungrySince []int64 // -1 when not hungry; else step it became hungry
	latencies   []int64 // completed hungry→eating waits, all processes
	eats        []int64 // eat sessions begun, per process
	perProcLat  [][]int64
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns a recorder for n processes. If keepEvents is true
// the full event list is retained (use only for small runs).
func NewRecorder(n int, keepEvents bool) *Recorder {
	r := &Recorder{
		keepEvents:  keepEvents,
		hungrySince: make([]int64, n),
		eats:        make([]int64, n),
		perProcLat:  make([][]int64, n),
	}
	for i := range r.hungrySince {
		r.hungrySince[i] = -1
	}
	return r
}

// AfterStep implements sim.Observer.
func (r *Recorder) AfterStep(w *sim.World, step int64, c sim.Choice) {
	name := "malicious"
	if !c.Malicious() {
		name = w.Algorithm().Actions()[c.Action].Name
	}
	if r.keepEvents {
		r.events = append(r.events, Event{
			Step:       step,
			Proc:       c.Proc,
			Action:     c.Action,
			ActionName: name,
			State:      w.State(c.Proc),
		})
	}
	// Latency accounting: a wait opens when the process first becomes
	// Hungry and closes when it reaches Eating. A leave (yield back to
	// Thinking under the dynamic threshold) does NOT close the wait — the
	// process is still waiting to eat, which is exactly the waiting the
	// paper's liveness property speaks about.
	p := c.Proc
	switch w.State(p) {
	case core.Hungry:
		if r.hungrySince[p] < 0 {
			r.hungrySince[p] = step
		}
	case core.Eating:
		if !c.Malicious() {
			r.eats[p]++
			if r.hungrySince[p] >= 0 {
				lat := step - r.hungrySince[p]
				r.latencies = append(r.latencies, lat)
				r.perProcLat[p] = append(r.perProcLat[p], lat)
			}
		}
		r.hungrySince[p] = -1
	}
}

// Events returns the recorded events (nil unless keepEvents was set).
func (r *Recorder) Events() []Event { return r.events }

// Eats returns how many eating sessions process p began.
func (r *Recorder) Eats(p graph.ProcID) int64 { return r.eats[p] }

// TotalEats returns the total number of eating sessions.
func (r *Recorder) TotalEats() int64 {
	var sum int64
	for _, e := range r.eats {
		sum += e
	}
	return sum
}

// Latencies returns all completed hungry→eating waits, in steps. The
// returned slice is a copy.
func (r *Recorder) Latencies() []int64 {
	return append([]int64(nil), r.latencies...)
}

// ProcLatencies returns process p's completed hungry→eating waits.
func (r *Recorder) ProcLatencies(p graph.ProcID) []int64 {
	return append([]int64(nil), r.perProcLat[p]...)
}

// StarvedSince returns, for each process currently hungry, the step at
// which its pending hunger began. Useful for starvation accounting at the
// end of a bounded run.
func (r *Recorder) StarvedSince() map[graph.ProcID]int64 {
	m := make(map[graph.ProcID]int64)
	for p, s := range r.hungrySince {
		if s >= 0 {
			m[graph.ProcID(p)] = s
		}
	}
	return m
}

// FormatState renders a compact one-line snapshot of the world:
// per-process state letters with depth, plus the priority orientation of
// every edge. Dead processes are bracketed, malicious ones starred.
func FormatState(w *sim.World) string {
	var b strings.Builder
	g := w.Graph()
	for p := 0; p < g.N(); p++ {
		pid := graph.ProcID(p)
		if p > 0 {
			b.WriteByte(' ')
		}
		switch w.Status(pid) {
		case sim.Dead:
			fmt.Fprintf(&b, "[%d:%v/%d]", p, w.State(pid), w.Depth(pid))
		case sim.Malicious:
			fmt.Fprintf(&b, "*%d:%v/%d*", p, w.State(pid), w.Depth(pid))
		default:
			fmt.Fprintf(&b, "%d:%v/%d", p, w.State(pid), w.Depth(pid))
		}
	}
	b.WriteString("  edges:")
	for _, e := range g.Edges() {
		anc := w.Priority(e)
		desc := e.Other(anc)
		fmt.Fprintf(&b, " %d>%d", anc, desc)
	}
	return b.String()
}

// FormatEvents renders recorded events, one per line, oldest first.
func FormatEvents(events []Event, names func(graph.ProcID) string) string {
	if names == nil {
		names = func(p graph.ProcID) string { return fmt.Sprintf("p%d", p) }
	}
	lines := make([]string, 0, len(events))
	for _, ev := range events {
		lines = append(lines, fmt.Sprintf("step %4d: %-4s %-9s -> %v",
			ev.Step, names(ev.Proc), ev.ActionName, ev.State))
	}
	return strings.Join(lines, "\n")
}

// SessionCounts returns (process, eats) pairs sorted by process for table
// rendering.
func (r *Recorder) SessionCounts() []struct {
	Proc graph.ProcID
	Eats int64
} {
	out := make([]struct {
		Proc graph.ProcID
		Eats int64
	}, len(r.eats))
	for p, e := range r.eats {
		out[p].Proc = graph.ProcID(p)
		out[p].Eats = e
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proc < out[j].Proc })
	return out
}
