package trace

import (
	"testing"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/workload"
)

func TestRoundCounterBasics(t *testing.T) {
	g := graph.Ring(6)
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		Workload:         workload.AlwaysHungry(),
		Seed:             1,
		DiameterOverride: sim.SafeDepthBound(g),
	})
	rc := NewRoundCounter(g.N())
	w.Observe(rc)
	const steps = 6000
	w.Run(steps)
	rounds := rc.Rounds()
	if rounds == 0 {
		t.Fatal("no rounds completed in 6000 steps")
	}
	// A round needs at least one step and at most... with n processes a
	// round can't need fewer steps than the number of obliged processes
	// (>= 1), so rounds <= steps; and the fairness bound caps how long a
	// round can drag, so a sane run yields many rounds.
	if rounds > steps {
		t.Fatalf("rounds %d exceed steps %d", rounds, steps)
	}
	stepsPerRound := float64(steps) / float64(rounds)
	if stepsPerRound < 1 || stepsPerRound > 20*float64(g.N()) {
		t.Errorf("implausible steps/round = %.1f", stepsPerRound)
	}
}

func TestRoundCounterRoundRobinTight(t *testing.T) {
	// Under the round-robin daemon each rotation serves every enabled
	// slot, so steps/round stays near the number of continuously enabled
	// processes — well under the fairness bound.
	g := graph.Ring(4)
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		Workload:         workload.AlwaysHungry(),
		Scheduler:        sim.NewRoundRobinScheduler(),
		Seed:             2,
		DiameterOverride: sim.SafeDepthBound(g),
	})
	rc := NewRoundCounter(g.N())
	w.Observe(rc)
	w.Run(4000)
	if rc.Rounds() < 100 {
		t.Errorf("round-robin completed only %d rounds in 4000 steps", rc.Rounds())
	}
}

func TestRoundCounterWithDeadProcess(t *testing.T) {
	// Dead processes are never enabled and must not block rounds.
	g := graph.Ring(5)
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		Workload:         workload.AlwaysHungry(),
		Seed:             3,
		DiameterOverride: sim.SafeDepthBound(g),
	})
	w.Kill(2)
	rc := NewRoundCounter(g.N())
	w.Observe(rc)
	w.Run(4000)
	if rc.Rounds() == 0 {
		t.Fatal("rounds stalled on a dead process")
	}
}
