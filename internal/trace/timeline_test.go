package trace

import (
	"strings"
	"testing"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
	"mcdp/internal/workload"
)

func TestTimelineRendersAllStates(t *testing.T) {
	g := graph.Ring(5)
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		Workload:         workload.AlwaysHungry(),
		Seed:             1,
		DiameterOverride: sim.SafeDepthBound(g),
		Faults: sim.NewFaultPlan(sim.FaultEvent{
			Step: 500, Kind: sim.MaliciousCrash, Proc: 0, ArbitrarySteps: 30,
		}),
	})
	tl := NewTimeline(g.N(), 50)
	w.Observe(tl)
	w.Run(4000)
	out := tl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != g.N()+1 { // legend + one row per philosopher
		t.Fatalf("timeline has %d lines:\n%s", len(lines), out)
	}
	for _, sym := range []string{"#", "h", "!", "x"} {
		if !strings.Contains(out, sym) {
			t.Errorf("timeline missing symbol %q:\n%s", sym, out)
		}
	}
	// All rows (sans prefix) have equal width.
	width := -1
	for _, l := range lines[1:] {
		cells := len(l) - len("  pN  ")
		if width < 0 {
			width = cells
		} else if cells != width {
			t.Errorf("ragged timeline rows:\n%s", out)
			break
		}
	}
}

func TestTimelineBucketPriority(t *testing.T) {
	// A meal shorter than the bucket must still appear: eating wins the
	// bucket over thinking.
	g := graph.Path(2)
	w := sim.NewWorld(sim.Config{
		Graph:            g,
		Algorithm:        core.NewMCDP(),
		Workload:         workload.AlwaysHungry(),
		Seed:             2,
		DiameterOverride: sim.SafeDepthBound(g),
	})
	tl := NewTimeline(g.N(), 200) // huge buckets; meals are ~1 step
	w.Observe(tl)
	w.Run(2000)
	if !strings.Contains(tl.String(), "#") {
		t.Error("short meals were averaged away by the bucket")
	}
}

func TestTimelineEveryFloor(t *testing.T) {
	tl := NewTimeline(2, 0) // clamps to 1
	if tl.every != 1 {
		t.Errorf("every = %d, want 1", tl.every)
	}
}
