package trace

import (
	"strconv"
	"strings"

	"mcdp/internal/core"
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

// Timeline samples per-process dining states over a run and renders them
// as an ASCII chart: one row per philosopher, one character per sample
// bucket — '.' Thinking, 'h' Hungry, '#' Eating, 'x' dead, '!' in a
// malicious window. Within a bucket, Eating wins over Hungry wins over
// Thinking (so a short meal still shows up), and death is sticky.
type Timeline struct {
	every int64 // steps per bucket
	n     int
	rows  [][]byte
	cur   []byte
	count int64
}

var _ sim.Observer = (*Timeline)(nil)

// NewTimeline returns a timeline sampling one column per `every` steps.
func NewTimeline(n int, every int64) *Timeline {
	if every < 1 {
		every = 1
	}
	tl := &Timeline{every: every, n: n, rows: make([][]byte, n), cur: make([]byte, n)}
	tl.resetBucket()
	return tl
}

func (tl *Timeline) resetBucket() {
	for i := range tl.cur {
		tl.cur[i] = '.'
	}
}

// rank orders the bucket symbols by display priority.
func rank(b byte) int {
	switch b {
	case 'x':
		return 4
	case '!':
		return 3
	case '#':
		return 2
	case 'h':
		return 1
	default:
		return 0
	}
}

// AfterStep implements sim.Observer.
func (tl *Timeline) AfterStep(w *sim.World, _ int64, _ sim.Choice) {
	for p := 0; p < tl.n; p++ {
		pid := graph.ProcID(p)
		var sym byte
		switch {
		case w.Status(pid) == sim.Dead:
			sym = 'x'
		case w.Status(pid) == sim.Malicious:
			sym = '!'
		case w.State(pid) == core.Eating:
			sym = '#'
		case w.State(pid) == core.Hungry:
			sym = 'h'
		default:
			sym = '.'
		}
		if rank(sym) > rank(tl.cur[p]) {
			tl.cur[p] = sym
		}
	}
	tl.count++
	if tl.count%tl.every == 0 {
		for p := 0; p < tl.n; p++ {
			tl.rows[p] = append(tl.rows[p], tl.cur[p])
		}
		tl.resetBucket()
	}
}

// String renders the chart with a legend.
func (tl *Timeline) String() string {
	var b strings.Builder
	b.WriteString("timeline (one column per " + strconv.FormatInt(tl.every, 10) +
		" steps; . thinking, h hungry, # eating, ! malicious, x dead)\n")
	for p := 0; p < tl.n; p++ {
		b.WriteString("  p")
		b.WriteString(strconv.Itoa(p))
		if p < 10 {
			b.WriteByte(' ')
		}
		b.WriteByte(' ')
		b.Write(tl.rows[p])
		b.WriteByte('\n')
	}
	return b.String()
}
