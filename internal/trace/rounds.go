package trace

import (
	"mcdp/internal/graph"
	"mcdp/internal/sim"
)

// RoundCounter measures executions in asynchronous rounds, the standard
// complexity unit of the self-stabilization literature: a round is a
// minimal execution segment in which every process that was continuously
// enabled since the segment began has executed at least once (processes
// that were disabled at some point in the segment owe nothing). Counting
// rounds instead of steps removes the daemon's interleaving noise from
// convergence measurements.
//
// The counter inspects the world's enabled set after every step, so it
// costs roughly one guard sweep per step; use it for measurements, not
// in hot benchmarks.
type RoundCounter struct {
	rounds     int64
	executed   []bool // acted in the current round
	contEn     []bool // continuously enabled since the round began
	enabledBuf []sim.Choice
}

var _ sim.Observer = (*RoundCounter)(nil)

// NewRoundCounter returns a counter for n processes.
func NewRoundCounter(n int) *RoundCounter {
	rc := &RoundCounter{
		executed: make([]bool, n),
		contEn:   make([]bool, n),
	}
	rc.beginRound()
	return rc
}

// beginRound resets the per-round books; continuous-enabledness is
// re-established by the first observation of the new round.
func (rc *RoundCounter) beginRound() {
	for i := range rc.executed {
		rc.executed[i] = false
		rc.contEn[i] = true // until observed otherwise
	}
}

// Rounds returns the number of completed rounds.
func (rc *RoundCounter) Rounds() int64 { return rc.rounds }

// AfterStep implements sim.Observer.
func (rc *RoundCounter) AfterStep(w *sim.World, _ int64, c sim.Choice) {
	rc.executed[c.Proc] = true
	// Update continuous enabledness from the post-step enabled set: a
	// process with nothing enabled now was not continuously enabled
	// through the round, so it owes no step.
	rc.enabledBuf = w.EnabledChoices(rc.enabledBuf[:0])
	nowEnabled := make(map[graph.ProcID]bool, len(rc.enabledBuf))
	for _, ch := range rc.enabledBuf {
		nowEnabled[ch.Proc] = true
	}
	done := true
	for p := range rc.contEn {
		if !nowEnabled[graph.ProcID(p)] {
			rc.contEn[p] = false
		}
		if rc.contEn[p] && !rc.executed[p] {
			done = false
		}
	}
	if done {
		rc.rounds++
		rc.beginRound()
	}
}
