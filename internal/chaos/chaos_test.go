package chaos

import (
	"testing"

	"mcdp/internal/graph"
)

// TestInjectorDeterminism: two injectors with the same seed and profile
// produce the identical decision stream.
func TestInjectorDeterminism(t *testing.T) {
	f := DefaultFaults()
	a := NewInjector(42, f)
	b := NewInjector(42, f)
	for i := 0; i < 10_000; i++ {
		da := a.Decide(0, 1, i%7)
		db := b.Decide(0, 1, i%7)
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
	if a.Decisions() != 10_000 {
		t.Fatalf("decision count %d, want 10000", a.Decisions())
	}
}

// TestInjectorRates: observed fault frequencies track the configured
// probabilities within loose tolerance.
func TestInjectorRates(t *testing.T) {
	f := Faults{Drop: 0.10, Duplicate: 0.05, Corrupt: 0.05, Delay: 0.10, MaxDelayTicks: 3, Reorder: 0.10}
	in := NewInjector(7, f)
	const n = 200_000
	var drops, dups, corrupts, delays int
	for i := 0; i < n; i++ {
		d := in.Decide(0, 1, 0)
		if d.Drop {
			drops++
		}
		if d.Duplicates > 0 {
			dups++
		}
		if d.CorruptBits != 0 {
			corrupts++
		}
		if d.DelayTicks > 0 {
			delays++
			if d.DelayTicks > f.MaxDelayTicks {
				t.Fatalf("delay %d exceeds max %d", d.DelayTicks, f.MaxDelayTicks)
			}
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		rate := float64(got) / n
		if rate < want*0.8 || rate > want*1.2 {
			t.Fatalf("%s rate %.4f, want about %.2f", name, rate, want)
		}
	}
	check("drop", drops, 0.10)
	// Duplicate/corrupt/delay coins only flip on non-dropped frames.
	check("duplicate", dups, 0.05*0.9)
	check("corrupt", corrupts, 0.05*0.9)
	// Delay fires on its own coin plus reorder's (1 tick) on the rest.
	check("delay", delays, (0.10+0.90*0.10)*0.9)
}

// TestZeroProfile: the zero profile yields a nil injector, and zero
// rates never fire.
func TestZeroProfile(t *testing.T) {
	if NewInjector(1, Faults{}) != nil {
		t.Fatal("zero profile must yield nil injector")
	}
	if (Faults{}).Zero() != true || DefaultFaults().Zero() {
		t.Fatal("Zero() misclassifies profiles")
	}
}

// TestRandomCampaignShape: plans are seed-deterministic, sorted by At,
// restart every victim after its crash, and stay within the horizon.
func TestRandomCampaignShape(t *testing.T) {
	g := graph.Grid(3, 3)
	const horizon = 400
	for seed := int64(0); seed < 50; seed++ {
		c := Random(seed, g, horizon, 2, 1, DefaultFaults())
		c2 := Random(seed, g, horizon, 2, 1, DefaultFaults())
		if c.String() != c2.String() {
			t.Fatalf("seed %d: plan not deterministic", seed)
		}
		crashAt := make(map[graph.ProcID]int)
		restarted := make(map[graph.ProcID]bool)
		for i, a := range c.Actions {
			if i > 0 && c.Actions[i-1].At > a.At {
				t.Fatalf("seed %d: actions unsorted: %s", seed, c.String())
			}
			if a.At < 0 || a.At >= horizon {
				t.Fatalf("seed %d: action outside horizon: %s", seed, a)
			}
			switch a.Kind {
			case ActKill, ActMaliciousCrash:
				crashAt[a.Node] = a.At
				if a.Kind == ActMaliciousCrash && a.Steps <= 0 {
					t.Fatalf("seed %d: malicious crash without window: %s", seed, a)
				}
			case ActRestartClean, ActRestartGarbage:
				at, ok := crashAt[a.Node]
				if !ok || a.At <= at {
					t.Fatalf("seed %d: restart before crash: %s", seed, c.String())
				}
				restarted[a.Node] = true
			}
		}
		if len(crashAt) != 2 || len(restarted) != 2 {
			t.Fatalf("seed %d: want 2 distinct victims all restarted, got %d/%d",
				seed, len(crashAt), len(restarted))
		}
	}
}

// TestRandomFailoverShape: kill-primary plans are seed-deterministic,
// sorted, windowed so strikes never pile up at one instant, and every
// target is a valid shard index. The generator must also leave Random's
// stream alone: the same Random call before and after RandomFailover
// existed yields identical plans (pinned by determinism of Random
// itself, re-checked here across interleaved calls).
func TestRandomFailoverShape(t *testing.T) {
	const horizon, shards, kills = 600, 4, 6
	for seed := int64(0); seed < 50; seed++ {
		c := RandomFailover(seed, shards, horizon, kills, DefaultFaults())
		c2 := RandomFailover(seed, shards, horizon, kills, DefaultFaults())
		if c.String() != c2.String() {
			t.Fatalf("seed %d: plan not deterministic", seed)
		}
		if len(c.Actions) != kills {
			t.Fatalf("seed %d: want %d strikes, got %d", seed, kills, len(c.Actions))
		}
		for i, a := range c.Actions {
			if a.Kind != ActKillPrimary {
				t.Fatalf("seed %d: unexpected kind %s", seed, a.Kind)
			}
			if int(a.Node) < 0 || int(a.Node) >= shards {
				t.Fatalf("seed %d: shard %d out of range", seed, a.Node)
			}
			if a.At < 0 || a.At >= horizon {
				t.Fatalf("seed %d: strike outside horizon: %s", seed, a)
			}
			if i > 0 && c.Actions[i-1].At > a.At {
				t.Fatalf("seed %d: strikes unsorted: %s", seed, c.String())
			}
		}
	}
	// Interleaving RandomFailover between Random calls must not change
	// what Random draws — the generators own disjoint streams.
	g := graph.Grid(3, 3)
	before := Random(9, g, 400, 2, 1, DefaultFaults())
	_ = RandomFailover(9, 4, 400, 3, DefaultFaults())
	after := Random(9, g, 400, 2, 1, DefaultFaults())
	if before.String() != after.String() {
		t.Fatal("RandomFailover perturbed Random's plan stream")
	}
}

// TestRandomVictimsDistinct: kill counts up to n yield distinct victims.
func TestRandomVictimsDistinct(t *testing.T) {
	g := graph.Ring(5)
	c := Random(3, g, 200, 5, 2, Faults{})
	victims := make(map[graph.ProcID]bool)
	for _, a := range c.Actions {
		if a.Kind == ActKill || a.Kind == ActMaliciousCrash {
			if victims[a.Node] {
				t.Fatalf("victim %d drawn twice", a.Node)
			}
			victims[a.Node] = true
		}
	}
	if len(victims) != 5 {
		t.Fatalf("want 5 victims, got %d", len(victims))
	}
}
