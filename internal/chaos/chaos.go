// Package chaos drives randomized fault campaigns against the diners
// runtime: seeded transport fault injection (drop, duplication,
// corruption, delay, reordering) plus scripted node kills, malicious
// crashes, restarts, and partitions. Everything is derived from a
// single seed through splitmix64 streams, so a campaign is a value —
// replaying the same seed reproduces the identical fault trace, which
// is what lets internal/detsim check chaos runs deterministically and
// lets a failing live campaign be shrunk offline.
//
//lint:deterministic
package chaos

import (
	"sync/atomic"

	"mcdp/internal/graph"
	"mcdp/internal/msgpass"
)

// Faults is the per-frame fault probability profile. Each frame on the
// delivery path draws independent coins in a fixed order (drop,
// duplicate, corrupt, delay, reorder), so the profile composes: a frame
// can be both duplicated and delayed. The zero value injects nothing.
type Faults struct {
	// Drop is the probability a frame is lost in transit.
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Corrupt is the probability a frame's payload is scrambled with
	// domain-respecting garbage before delivery.
	Corrupt float64
	// Delay is the probability a frame is held for 1..MaxDelayTicks
	// gossip ticks (virtual rounds under a driver) before delivery.
	Delay float64
	// MaxDelayTicks bounds the delay drawn for delayed frames
	// (default 3 when Delay > 0).
	MaxDelayTicks int
	// Reorder is the probability a frame not already delayed is held
	// one tick, letting the frames behind it overtake.
	Reorder float64
}

// DefaultFaults is the standard campaign profile: every fault class at
// or above the 10% rates the acceptance bar asks for, except the two
// expensive classes (duplication, corruption) which stay at 5%.
func DefaultFaults() Faults {
	return Faults{
		Drop:          0.10,
		Duplicate:     0.05,
		Corrupt:       0.05,
		Delay:         0.10,
		MaxDelayTicks: 3,
		Reorder:       0.10,
	}
}

// Zero reports whether the profile injects nothing.
func (f Faults) Zero() bool {
	return f.Drop == 0 && f.Duplicate == 0 && f.Corrupt == 0 && f.Delay == 0 && f.Reorder == 0
}

// Injector implements msgpass.FaultInjector: one seeded splitmix64
// stream, advanced by an atomic counter, drives every per-frame
// decision. Under the goroutine runtime the counter order follows the
// race of delivery, so rates hold but traces differ; under a
// single-threaded driver (detsim) the call order is deterministic and
// the whole fault trace replays exactly from the seed.
type Injector struct {
	seed uint64
	f    Faults
	ctr  atomic.Uint64
}

// NewInjector builds an injector for the profile. A zero profile
// returns nil, which callers can hand to msgpass.Config.Faults
// directly (nil disables the hook).
func NewInjector(seed int64, f Faults) *Injector {
	if f.Zero() {
		return nil
	}
	if f.Delay > 0 && f.MaxDelayTicks <= 0 {
		f.MaxDelayTicks = 3
	}
	return &Injector{seed: uint64(seed), f: f}
}

// Faults returns the injector's probability profile.
func (in *Injector) Faults() Faults { return in.f }

// Decisions returns how many frames the injector has judged.
func (in *Injector) Decisions() uint64 { return in.ctr.Load() }

// Decide draws the fault verdict for one frame.
func (in *Injector) Decide(from, to graph.ProcID, edgeIdx int) msgpass.FaultDecision {
	n := in.ctr.Add(1)
	x := Splitmix64(in.seed ^ n*0x9e3779b97f4a7c15)
	var d msgpass.FaultDecision
	if coin(x, in.f.Drop) {
		d.Drop = true
		return d
	}
	x = Splitmix64(x + 0x9e3779b97f4a7c15)
	if coin(x, in.f.Duplicate) {
		d.Duplicates = 1
	}
	x = Splitmix64(x + 0x9e3779b97f4a7c15)
	if coin(x, in.f.Corrupt) {
		d.CorruptBits = x | 1 // non-zero marks the frame for corruption
	}
	x = Splitmix64(x + 0x9e3779b97f4a7c15)
	if coin(x, in.f.Delay) {
		d.DelayTicks = 1 + int(Splitmix64(x)%uint64(in.f.MaxDelayTicks))
	}
	x = Splitmix64(x + 0x9e3779b97f4a7c15)
	if d.DelayTicks == 0 && coin(x, in.f.Reorder) {
		d.DelayTicks = 1
	}
	return d
}

// coin maps the top 53 bits of x to [0,1) and compares against p.
func coin(x uint64, p float64) bool {
	return p > 0 && float64(x>>11)/(1<<53) < p
}

// Splitmix64 is the splitmix64 finalizer: the repo's standard cheap,
// seedable, stateless PRNG step. Exported so campaign generators and
// tests share the exact stream the injector uses.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
