// Campaigns: scripted sequences of node-level faults with a transport
// fault profile riding alongside. A Campaign is plain data — detsim
// executes one deterministically under the virtual clock, and the
// dinerd chaos runner executes the same shape against a live service.
//
//lint:deterministic
package chaos

import (
	"fmt"
	"sort"

	"mcdp/internal/graph"
)

// ActionKind is one node-level fault or recovery.
type ActionKind uint8

const (
	// ActKill halts the node benignly (fail-stop).
	ActKill ActionKind = iota + 1
	// ActMaliciousCrash gives the node a window of Steps garbage events
	// before it halts — the paper's malicious crash.
	ActMaliciousCrash
	// ActRestartClean revives a halted node in the legitimate initial
	// state, as a new incarnation.
	ActRestartClean
	// ActRestartGarbage revives a halted node with arbitrary state — the
	// adversarial reboot a stabilizing protocol must absorb.
	ActRestartGarbage
	// ActPartition isolates the node: frames to and from it are lost.
	ActPartition
	// ActHeal ends the node's partition.
	ActHeal
	// ActLeave splices the node out of the conflict graph: its edges —
	// and any tokens they pinned — vanish, freeing blocked waiters.
	ActLeave
	// ActJoin readmits a departed node over its surviving original
	// edges, each booting by the humble-reboot rule.
	ActJoin
	// ActKillPrimary halts one shard's primary server and lets the
	// router's supervisor promote a standby; Node holds the shard index,
	// not a diner. Only meaningful against a replicated router.
	ActKillPrimary
)

// String names the kind for traces and reports.
func (k ActionKind) String() string {
	switch k {
	case ActKill:
		return "kill"
	case ActMaliciousCrash:
		return "malcrash"
	case ActRestartClean:
		return "restart-clean"
	case ActRestartGarbage:
		return "restart-garbage"
	case ActPartition:
		return "partition"
	case ActHeal:
		return "heal"
	case ActLeave:
		return "leave"
	case ActJoin:
		return "join"
	case ActKillPrimary:
		return "kill-primary"
	default:
		return fmt.Sprintf("ActionKind(%d)", uint8(k))
	}
}

// Action is one scheduled fault.
type Action struct {
	// At is when the action fires: a fair-mode round index under detsim,
	// or a tick index for the live campaign runner.
	At int
	// Kind is what happens.
	Kind ActionKind
	// Node is the victim.
	Node graph.ProcID
	// Steps is the malicious window length (ActMaliciousCrash only).
	Steps int
}

// String renders one action for traces.
func (a Action) String() string {
	if a.Kind == ActMaliciousCrash {
		return fmt.Sprintf("t%d %s %d steps=%d", a.At, a.Kind, a.Node, a.Steps)
	}
	return fmt.Sprintf("t%d %s %d", a.At, a.Kind, a.Node)
}

// Campaign is one complete fault plan: node-level actions on a shared
// timeline plus a transport fault profile active for the whole run.
type Campaign struct {
	// Seed names the campaign; Random derives everything from it, and
	// the transport injector reuses it.
	Seed int64
	// Faults is the transport fault profile.
	Faults Faults
	// Actions is the node-level plan, sorted by At.
	Actions []Action
}

// Injector builds the campaign's transport fault injector (nil when
// the profile is zero).
func (c Campaign) Injector() *Injector { return NewInjector(c.Seed, c.Faults) }

// String renders the plan one action per line.
func (c Campaign) String() string {
	s := fmt.Sprintf("campaign seed=%d faults=%+v", c.Seed, c.Faults)
	for _, a := range c.Actions {
		s += "\n  " + a.String()
	}
	return s
}

// Random derives a complete campaign from a seed: kills distinct
// victims somewhere in the first half of the horizon (each a benign
// kill or a malicious crash), restarts every victim after a gap (clean
// or with garbage state), makes churn further distinct victims leave
// the conflict graph and rejoin after a gap (so membership is always
// restored before the horizon ends), and with probability one half
// adds one partition window on an untouched node. The same (seed,
// graph, horizon, kills, churn, faults) always yields the identical
// plan, and churn = 0 draws exactly the plans it drew before churn
// existed.
func Random(seed int64, g *graph.Graph, horizon, kills, churn int, f Faults) Campaign {
	if horizon < 20 {
		horizon = 20
	}
	n := g.N()
	if kills > n {
		kills = n
	}
	if kills < 0 {
		kills = 0
	}
	if churn > n-kills {
		churn = n - kills
	}
	if churn < 0 {
		churn = 0
	}
	s := uint64(seed) ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		s = Splitmix64(s)
		return s
	}
	draw := func(lo, hi int) int { // uniform in [lo, hi)
		if hi <= lo {
			return lo
		}
		return lo + int(next()%uint64(hi-lo))
	}

	// Victims without replacement: a seeded Fisher-Yates over all nodes.
	perm := make([]graph.ProcID, n)
	for i := range perm {
		perm[i] = graph.ProcID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}

	var actions []Action
	for _, v := range perm[:kills] {
		at := draw(horizon/10, horizon/2)
		if next()&1 == 0 {
			actions = append(actions, Action{At: at, Kind: ActMaliciousCrash, Node: v, Steps: draw(8, 28)})
		} else {
			actions = append(actions, Action{At: at, Kind: ActKill, Node: v})
		}
		restartAt := at + draw(horizon/10, horizon/4)
		kind := ActRestartClean
		if next()&1 == 0 {
			kind = ActRestartGarbage
		}
		actions = append(actions, Action{At: restartAt, Kind: kind, Node: v})
	}

	for _, v := range perm[kills : kills+churn] {
		at := draw(horizon/10, horizon/2)
		actions = append(actions,
			Action{At: at, Kind: ActLeave, Node: v},
			Action{At: at + draw(horizon/10, horizon/4), Kind: ActJoin, Node: v})
	}

	// One partition window on an untouched node, half the time.
	if kills+churn < n && next()&1 == 0 {
		p := perm[kills+churn+int(next()%uint64(n-kills-churn))]
		from := draw(horizon/10, horizon/2)
		until := from + draw(horizon/20, horizon/5)
		if until >= horizon {
			until = horizon - 1
		}
		if until > from {
			actions = append(actions,
				Action{At: from, Kind: ActPartition, Node: p},
				Action{At: until, Kind: ActHeal, Node: p})
		}
	}

	sort.Slice(actions, func(i, j int) bool {
		if actions[i].At != actions[j].At {
			return actions[i].At < actions[j].At
		}
		if actions[i].Node != actions[j].Node {
			return actions[i].Node < actions[j].Node
		}
		return actions[i].Kind < actions[j].Kind
	})
	return Campaign{Seed: seed, Faults: f, Actions: actions}
}

// RandomFailover derives a kill-primary campaign against a replicated
// router: ActKillPrimary strikes on seed-drawn shards (Action.Node
// holds the shard index), each placed in its own slice of the first
// three quarters of the horizon so a failover — detection, promotion,
// cool-off — has room to complete before the next strike lands. A
// separate generator, not a Random flavor, so its draws never perturb
// the plans Random has always produced for a seed.
// The same (seed, shards, horizon, kills) always yields the same plan.
func RandomFailover(seed int64, shards, horizon, kills int, f Faults) Campaign {
	if horizon < 20 {
		horizon = 20
	}
	if shards < 1 {
		shards = 1
	}
	if kills < 0 {
		kills = 0
	}
	s := uint64(seed) ^ 0xd1b54a32d192ed03
	next := func() uint64 {
		s = Splitmix64(s)
		return s
	}
	spread := horizon * 3 / 4
	var actions []Action
	for i := 0; i < kills; i++ {
		lo := i * spread / kills
		hi := (i + 1) * spread / kills
		at := lo
		if hi > lo {
			at = lo + int(next()%uint64(hi-lo))
		}
		actions = append(actions, Action{
			At:   at,
			Kind: ActKillPrimary,
			Node: graph.ProcID(next() % uint64(shards)),
		})
	}
	sort.Slice(actions, func(i, j int) bool { return actions[i].At < actions[j].At })
	return Campaign{Seed: seed, Faults: f, Actions: actions}
}
